//! Sweep specifications: the cartesian grid of evaluation points.
//!
//! A [`SweepSpec`] describes a batch as the product of shared axes (RAS
//! ratios × standby temperatures × lifetimes) with a [`Workload`] — either
//! full circuit aging analyses under standby policies, or bare model ΔV_th
//! evaluations. [`SweepSpec::points`] enumerates the grid in a fixed
//! row-major order, so a job index identifies the same point on every run
//! of the same spec; that invariant is what checkpoint/resume and the
//! determinism guarantees build on.

use crate::pool::JobOutcome;
use relia_core::units::{Kelvin, Seconds};
use relia_flow::StandbyPolicy;

/// A standby policy named in a sweep grid (the realizable subset of
/// [`StandbyPolicy`] plus the idealized bounds, in a form that can be
/// printed and parsed for checkpoints and CLI flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// Idealized worst case: every PMOS stressed throughout standby.
    Worst,
    /// Idealized best case: no PMOS stressed during standby.
    Best,
    /// Power gating with a footer device.
    Footer,
    /// A concrete standby input vector.
    Vector(Vec<bool>),
}

impl PolicySpec {
    /// The flow-layer policy this spec names.
    pub fn to_policy(&self) -> StandbyPolicy {
        match self {
            PolicySpec::Worst => StandbyPolicy::AllInternalZero,
            PolicySpec::Best => StandbyPolicy::AllInternalOne,
            PolicySpec::Footer => StandbyPolicy::PowerGatedFooter,
            PolicySpec::Vector(v) => StandbyPolicy::InputVector(v.clone()),
        }
    }

    /// Stable textual form (`worst`, `best`, `footer`, or the bit string).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Worst => "worst".to_owned(),
            PolicySpec::Best => "best".to_owned(),
            PolicySpec::Footer => "footer".to_owned(),
            PolicySpec::Vector(v) => v.iter().map(|&b| if b { '1' } else { '0' }).collect(),
        }
    }

    /// Parses the textual form produced by [`PolicySpec::label`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "worst" => Ok(PolicySpec::Worst),
            "best" => Ok(PolicySpec::Best),
            "footer" => Ok(PolicySpec::Footer),
            bits if !bits.is_empty() && bits.bytes().all(|b| b == b'0' || b == b'1') => Ok(
                PolicySpec::Vector(bits.bytes().map(|b| b == b'1').collect()),
            ),
            other => Err(format!(
                "unknown standby policy {other:?} (want worst|best|footer|BITS)"
            )),
        }
    }
}

/// What each grid point computes.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Full aging analyses: `circuits × policies` per schedule point.
    CircuitAging {
        /// Circuit names, resolved by the engine's circuit resolver
        /// (builtin benchmark names or netlist paths).
        circuits: Vec<String>,
        /// Standby policies to evaluate for every circuit.
        policies: Vec<PolicySpec>,
    },
    /// Bare NBTI model evaluation of one device stress point per schedule
    /// point (the workload behind the paper's Fig. 3 / Fig. 4 sweeps).
    ModelDeltaVth {
        /// Active-mode stress probability.
        p_active: f64,
        /// Standby-mode stress probability.
        p_standby: f64,
    },
}

/// A batch sweep: shared schedule axes × workload.
///
/// Every axis must be non-empty for the grid to contain any points. The
/// active temperature and mode-cycle period are fixed at the paper's
/// baseline (400 K, 1000 s) by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// What to compute at each point.
    pub workload: Workload,
    /// `(active, standby)` RAS weights, e.g. `(1.0, 9.0)` for 1:9.
    pub ras: Vec<(f64, f64)>,
    /// Standby temperatures.
    pub t_standby: Vec<Kelvin>,
    /// Total operating lifetimes.
    pub lifetimes: Vec<Seconds>,
}

/// One enumerated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPoint {
    /// `(active, standby)` RAS weights.
    pub ras: (f64, f64),
    /// Standby temperature.
    pub t_standby: Kelvin,
    /// Lifetime.
    pub lifetime: Seconds,
    /// The workload-specific part of the point.
    pub task: JobTask,
}

/// The workload-specific half of a [`JobPoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobTask {
    /// Aging analysis of `circuit` under `policy`.
    Aging {
        /// Circuit name (resolver key).
        circuit: String,
        /// Standby policy.
        policy: PolicySpec,
    },
    /// Bare model evaluation at this stress probability pair.
    Model {
        /// Active-mode stress probability.
        p_active: f64,
        /// Standby-mode stress probability.
        p_standby: f64,
    },
}

/// The numbers one completed job produces.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Output of a [`JobTask::Aging`] job.
    Aging {
        /// Largest per-gate ΔV_th in volts.
        worst_delta_vth: f64,
        /// Relative critical-path delay increase.
        degradation: f64,
        /// Time-zero critical-path delay in picoseconds.
        nominal_delay_ps: f64,
        /// End-of-life critical-path delay in picoseconds.
        degraded_delay_ps: f64,
        /// Standby leakage in amperes (realizable vector policies only).
        standby_leakage: Option<f64>,
        /// Expected active-mode leakage in amperes.
        active_leakage: f64,
    },
    /// Output of a [`JobTask::Model`] job: ΔV_th in volts.
    Model {
        /// Threshold-voltage shift in volts.
        delta_vth: f64,
    },
}

/// Terminal state of one job: completed with numbers, failed with a
/// reason (panic or analysis error), or cancelled by the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job produced a result.
    Completed(JobResult),
    /// Every permitted attempt failed; the sweep carried on without it.
    Failed {
        /// Terminal failure reason (panic message or analysis error).
        reason: String,
        /// Total attempts made (1 when no retry happened).
        attempts: u32,
    },
    /// The job overran its soft deadline and was cancelled cooperatively.
    TimedOut {
        /// Wall-clock milliseconds the final attempt ran.
        elapsed_ms: u64,
    },
}

impl JobStatus {
    /// The result, if completed.
    pub fn result(&self) -> Option<&JobResult> {
        match self {
            JobStatus::Completed(r) => Some(r),
            _ => None,
        }
    }

    pub(crate) fn from_outcome(outcome: JobOutcome<JobResult>) -> Self {
        match outcome {
            JobOutcome::Completed(result) => JobStatus::Completed(result),
            JobOutcome::Failed { attempts } => JobStatus::Failed {
                reason: attempts
                    .last()
                    .map(|a| a.reason.clone())
                    .unwrap_or_else(|| "unknown failure".to_owned()),
                attempts: attempts.len() as u32,
            },
            JobOutcome::TimedOut { elapsed_ms, .. } => JobStatus::TimedOut { elapsed_ms },
        }
    }
}

impl SweepSpec {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        let tasks = match &self.workload {
            Workload::CircuitAging { circuits, policies } => circuits.len() * policies.len(),
            Workload::ModelDeltaVth { .. } => 1,
        };
        tasks * self.ras.len() * self.t_standby.len() * self.lifetimes.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the grid in its canonical order.
    ///
    /// For [`Workload::CircuitAging`] the nesting is
    /// `circuit → policy → ras → t_standby → lifetime` (lifetime fastest);
    /// for [`Workload::ModelDeltaVth`] it is `ras → t_standby → lifetime`.
    /// Job index `i` is position `i` of this vector, on every run.
    pub fn points(&self) -> Vec<JobPoint> {
        let mut out = Vec::with_capacity(self.len());
        let tasks: Vec<JobTask> = match &self.workload {
            Workload::CircuitAging { circuits, policies } => circuits
                .iter()
                .flat_map(|c| {
                    policies.iter().map(move |p| JobTask::Aging {
                        circuit: c.clone(),
                        policy: p.clone(),
                    })
                })
                .collect(),
            Workload::ModelDeltaVth {
                p_active,
                p_standby,
            } => vec![JobTask::Model {
                p_active: *p_active,
                p_standby: *p_standby,
            }],
        };
        for task in &tasks {
            for &ras in &self.ras {
                for &t_standby in &self.t_standby {
                    for &lifetime in &self.lifetimes {
                        out.push(JobPoint {
                            ras,
                            t_standby,
                            lifetime,
                            task: task.clone(),
                        });
                    }
                }
            }
        }
        out
    }

    /// FNV-1a fingerprint of the spec's canonical text form. Stored in
    /// checkpoint headers so a resume against a *different* spec is
    /// rejected instead of silently mixing grids.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        match &self.workload {
            Workload::CircuitAging { circuits, policies } => {
                text.push_str("aging;");
                for c in circuits {
                    text.push_str(c);
                    text.push(',');
                }
                text.push(';');
                for p in policies {
                    text.push_str(&p.label());
                    text.push(',');
                }
            }
            Workload::ModelDeltaVth {
                p_active,
                p_standby,
            } => {
                text.push_str(&format!("model;{p_active};{p_standby}"));
            }
        }
        text.push(';');
        for (a, s) in &self.ras {
            text.push_str(&format!("{a}:{s},"));
        }
        text.push(';');
        for t in &self.t_standby {
            text.push_str(&format!("{},", t.0));
        }
        text.push(';');
        for l in &self.lifetimes {
            text.push_str(&format!("{},", l.0));
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            workload: Workload::CircuitAging {
                circuits: vec!["c17".into(), "c432".into()],
                policies: vec![PolicySpec::Worst, PolicySpec::Best],
            },
            ras: vec![(1.0, 1.0), (1.0, 9.0)],
            t_standby: vec![Kelvin(330.0), Kelvin(400.0)],
            lifetimes: vec![Seconds(1.0e8)],
        }
    }

    #[test]
    fn grid_size_is_product_of_axes() {
        assert_eq!(spec().len(), 2 * 2 * 2 * 2);
        assert_eq!(spec().points().len(), 16);
    }

    #[test]
    fn enumeration_is_stable_and_lifetime_fastest() {
        let a = spec().points();
        let b = spec().points();
        assert_eq!(a, b);
        // First block: first circuit, first policy, first ras, sweeping
        // t_standby then lifetime.
        assert_eq!(a[0].t_standby, Kelvin(330.0));
        assert_eq!(a[1].t_standby, Kelvin(400.0));
        match (&a[0].task, &a[4].task) {
            (
                JobTask::Aging {
                    circuit: c0,
                    policy: p0,
                },
                JobTask::Aging {
                    circuit: c4,
                    policy: p4,
                },
            ) => {
                assert_eq!(c0, "c17");
                assert_eq!(c4, "c17");
                assert_eq!(p0, &PolicySpec::Worst);
                assert_eq!(p4, &PolicySpec::Best);
            }
            other => panic!("unexpected tasks {other:?}"),
        }
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let base = spec();
        let mut other = spec();
        other.t_standby.push(Kelvin(370.0));
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut reordered = spec();
        reordered.ras.reverse();
        assert_ne!(base.fingerprint(), reordered.fingerprint());
        assert_eq!(base.fingerprint(), spec().fingerprint());
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [
            PolicySpec::Worst,
            PolicySpec::Best,
            PolicySpec::Footer,
            PolicySpec::Vector(vec![true, false, true]),
        ] {
            assert_eq!(PolicySpec::parse(&p.label()).unwrap(), p);
        }
        assert!(PolicySpec::parse("101x").is_err());
        assert!(PolicySpec::parse("").is_err());
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let mut s = spec();
        s.lifetimes.clear();
        assert!(s.is_empty());
        assert!(s.points().is_empty());
    }
}

//! Workspace discovery: which files to lint and how to classify them.
//!
//! The walk covers the root crate's `src/` and every `crates/*/src` — the
//! same set the workspace compiles as library/binary code. `tests/`,
//! `benches/` and `examples/` trees are intentionally out of scope: the
//! rules that need an exemption there (unwrap, prints) already grant it,
//! and fixture files must never be linted as product code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileKind, FileOpts};

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the walk root (slash-separated for stable output).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Rule-scoping classification.
    pub opts: FileOpts,
}

/// Walks `root` (a workspace checkout) and returns every lintable Rust
/// source file, sorted by relative path.
///
/// # Errors
///
/// Returns [`io::Error`] when a directory listed for the walk cannot be
/// read. A missing `crates/` or `src/` directory is not an error — the
/// walk just covers what exists.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect(&src, root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let member_src = member.join("src");
            if member_src.is_dir() {
                collect(&member_src, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`.
fn collect(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel_path = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                opts: classify(&rel_path),
                abs_path: path,
                rel_path,
            });
        }
    }
    Ok(())
}

/// Classifies a file by its workspace-relative path.
pub fn classify(rel_path: &str) -> FileOpts {
    let is_bin = rel_path.split('/').any(|c| c == "bin") || rel_path.ends_with("/main.rs");
    let crate_root = rel_path.ends_with("src/lib.rs");
    FileOpts {
        kind: if is_bin {
            FileKind::Binary
        } else {
            FileKind::Library
        },
        crate_root,
        // Request handlers run on a bounded worker pool with per-request
        // deadlines; R7 bans blocking primitives there.
        handler: rel_path.starts_with("crates/serve/src/"),
        // Job/engine code runs under cooperative cancellation; R10
        // requires its model-evaluating loops to poll.
        job: rel_path.starts_with("crates/jobs/src/") || rel_path.starts_with("crates/fleet/src/"),
    }
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        let lib = classify("crates/core/src/units.rs");
        assert_eq!(lib.kind, FileKind::Library);
        assert!(!lib.crate_root);
        assert!(!lib.handler);

        let serve = classify("crates/serve/src/service.rs");
        assert_eq!(serve.kind, FileKind::Library);
        assert!(serve.handler);
        assert!(!serve.job);

        let jobs = classify("crates/jobs/src/pool.rs");
        assert!(jobs.job);
        assert!(!jobs.handler);

        let fleet = classify("crates/fleet/src/engine.rs");
        assert!(fleet.job);

        let root = classify("crates/core/src/lib.rs");
        assert!(root.crate_root);

        let bin = classify("crates/bench/src/bin/fig03_ras_sweep.rs");
        assert_eq!(bin.kind, FileKind::Binary);
        assert!(!bin.crate_root);

        let cli = classify("src/bin/relia.rs");
        assert_eq!(cli.kind, FileKind::Binary);

        let main = classify("crates/lint/src/main.rs");
        assert_eq!(main.kind, FileKind::Binary);
    }

    #[test]
    fn discovers_this_workspace() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives in the workspace");
        let files = discover(&root).expect("walk succeeds");
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/core/src/units.rs"));
        assert!(files.iter().any(|f| f.rel_path == "src/lib.rs"));
        // Sorted and free of non-source trees.
        assert!(files.windows(2).all(|w| w[0].rel_path < w[1].rel_path));
        assert!(files.iter().all(|f| !f.rel_path.contains("tests/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("target/")));
    }
}

//! `relia-lint` — the standalone CLI for the workspace linter.
//!
//! ```text
//! relia-lint [--root PATH] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes follow the sweep CLI convention: 0 clean, 1 violations
//! found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use relia_lint::{lint_workspace, walker, RULE_IDS};

const USAGE: &str = "usage: relia-lint [--root PATH] [--format text|json] [--list-rules]";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    return usage_error(&format!(
                        "--format wants text|json, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--list-rules" => {
                for (i, id) in RULE_IDS.iter().enumerate() {
                    println!("R{} {id}", i + 1);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return usage_error(&format!("cannot read current dir: {e}")),
            };
            match walker::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage_error("no workspace Cargo.toml above the current directory"),
            }
        }
    };

    match lint_workspace(&root) {
        Ok(diags) => {
            for d in &diags {
                match format {
                    Format::Text => println!("{}", d.render_text()),
                    Format::Json => println!("{}", d.render_json()),
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                if matches!(format, Format::Text) {
                    eprintln!("relia-lint: {} violation(s)", diags.len());
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => usage_error(&e),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("relia-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

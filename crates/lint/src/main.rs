//! `relia-lint` — the standalone CLI for the workspace linter.
//!
//! ```text
//! relia-lint [--root PATH] [--format text|json|sarif] [--jobs N]
//!            [--incremental] [--write-cache] [--list-rules]
//! ```
//!
//! Exit codes follow the sweep CLI convention: 0 clean, 1 violations
//! found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use relia_lint::{diag, lint_workspace_opts, walker, WorkspaceOpts, RULES};

const USAGE: &str = "usage: relia-lint [--root PATH] [--format text|json|sarif] [--jobs N] \
                     [--incremental] [--write-cache] [--list-rules]";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut opts = WorkspaceOpts::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return usage_error(&format!(
                        "--format wants text|json|sarif, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--jobs" => match iter.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => return usage_error("--jobs needs a positive integer"),
            },
            "--incremental" => opts.incremental = true,
            "--write-cache" => opts.write_cache = true,
            "--list-rules" => {
                for (i, r) in RULES.iter().enumerate() {
                    println!("R{} {} — {}", i + 1, r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return usage_error(&format!("cannot read current dir: {e}")),
            };
            match walker::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage_error("no workspace Cargo.toml above the current directory"),
            }
        }
    };

    match lint_workspace_opts(&root, &opts) {
        Ok(diags) => {
            match format {
                Format::Text => {
                    for d in &diags {
                        println!("{}", d.render_text());
                    }
                }
                Format::Json => {
                    for d in &diags {
                        println!("{}", d.render_json());
                    }
                }
                Format::Sarif => println!("{}", diag::render_sarif(&diags)),
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                if matches!(format, Format::Text) {
                    eprintln!("relia-lint: {} violation(s)", diags.len());
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => usage_error(&e),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("relia-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

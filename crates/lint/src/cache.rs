//! The `.lint-cache` manifest behind `relia lint --incremental`.
//!
//! Incremental mode must not change what the linter reports, only what it
//! re-reads. Two properties make the skip sound:
//!
//! 1. **Only clean files are cached.** A file enters the manifest only
//!    when its per-file diagnostics were empty, so skipping it can never
//!    hide a finding — a file with findings is re-analyzed every run
//!    until it is fixed.
//! 2. **Workspace rules are recomputed every run.** The manifest stores
//!    each clean file's [`FileSummary`] (lock-nesting edges + deferred
//!    `allow(lock-order-inversion)` pragmas) verbatim, so the R9 lock
//!    graph sees exactly what a full analysis would have produced.
//!
//! The manifest is a line-oriented text file, committed to the repo so a
//! fresh checkout starts warm:
//!
//! ```text
//! relia-lint-cache v1
//! file <rel_path> <fnv1a64-hex>
//! edge <first> <second> <first_line> <second_line>
//! defer <pragma_line> <target_line> <used 0|1>
//! ```
//!
//! `edge`/`defer` lines belong to the most recent `file` line. Any parse
//! problem — missing header, wrong version, malformed line — discards the
//! whole cache and the run degrades to a full lint: a corrupt manifest
//! costs time, never correctness. Bump the version string whenever rule
//! semantics change so stale manifests self-invalidate.

use crate::graph::{FileSummary, LockEdge};
use crate::pragma::DeferredAllow;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Manifest header; the version suffix invalidates caches across rule
/// changes.
const HEADER: &str = "relia-lint-cache v1";

/// Name of the manifest file at the workspace root.
pub const CACHE_FILE: &str = ".lint-cache";

/// One cached file: its content hash and workspace-rule inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// FNV-1a 64 hash of the file's bytes.
    pub hash: u64,
    /// The file's contribution to workspace-level rules.
    pub summary: FileSummary,
}

/// FNV-1a 64-bit hash — dependency-free and stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads the manifest at `path`. Returns `None` — degrade to a full lint
/// — when the file is missing, unreadable, or malformed in any way.
pub fn load(path: &Path) -> Option<BTreeMap<String, CacheEntry>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut entries = BTreeMap::new();
    let mut current: Option<(String, CacheEntry)> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(' ');
        match parts.next()? {
            "file" => {
                if let Some((name, entry)) = current.take() {
                    entries.insert(name, entry);
                }
                let name = parts.next()?.to_owned();
                let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                if parts.next().is_some() {
                    return None;
                }
                current = Some((
                    name,
                    CacheEntry {
                        hash,
                        summary: FileSummary::default(),
                    },
                ));
            }
            "edge" => {
                let entry = &mut current.as_mut()?.1;
                entry.summary.edges.push(LockEdge {
                    first: parts.next()?.to_owned(),
                    second: parts.next()?.to_owned(),
                    first_line: parts.next()?.parse().ok()?,
                    second_line: parts.next()?.parse().ok()?,
                });
                if parts.next().is_some() {
                    return None;
                }
            }
            "defer" => {
                let entry = &mut current.as_mut()?.1;
                entry.summary.deferred_allows.push(DeferredAllow {
                    line: parts.next()?.parse().ok()?,
                    target_line: parts.next()?.parse().ok()?,
                    used: match parts.next()? {
                        "0" => false,
                        "1" => true,
                        _ => return None,
                    },
                });
                if parts.next().is_some() {
                    return None;
                }
            }
            _ => return None,
        }
    }
    if let Some((name, entry)) = current.take() {
        entries.insert(name, entry);
    }
    Some(entries)
}

/// Serializes `entries` to the manifest text form (sorted by path — the
/// map's iteration order — so the committed file diffs cleanly).
pub fn render(entries: &BTreeMap<String, CacheEntry>) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (name, e) in entries {
        let _ = writeln!(out, "file {} {:016x}", name, e.hash);
        for edge in &e.summary.edges {
            let _ = writeln!(
                out,
                "edge {} {} {} {}",
                edge.first, edge.second, edge.first_line, edge.second_line
            );
        }
        for d in &e.summary.deferred_allows {
            let _ = writeln!(
                out,
                "defer {} {} {}",
                d.line,
                d.target_line,
                u8::from(d.used)
            );
        }
    }
    out
}

/// Writes the manifest to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn save(path: &Path, entries: &BTreeMap<String, CacheEntry>) -> io::Result<()> {
    std::fs::write(path, render(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, CacheEntry> {
        let mut m = BTreeMap::new();
        m.insert(
            "crates/a/src/lib.rs".to_owned(),
            CacheEntry {
                hash: 0xdead_beef_0123_4567,
                summary: FileSummary {
                    edges: vec![LockEdge {
                        first: "slow".into(),
                        second: "stats".into(),
                        first_line: 3,
                        second_line: 4,
                    }],
                    deferred_allows: vec![DeferredAllow {
                        line: 9,
                        target_line: 10,
                        used: false,
                    }],
                },
            },
        );
        m.insert(
            "src/lib.rs".to_owned(),
            CacheEntry {
                hash: 1,
                summary: FileSummary::default(),
            },
        );
        m
    }

    #[test]
    fn round_trips() {
        let entries = sample();
        let text = render(&entries);
        let dir = std::env::temp_dir().join(format!("lint-cache-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        std::fs::write(&path, &text).unwrap();
        let loaded = load(&path).expect("cache parses");
        assert_eq!(loaded, entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_degrades_to_none() {
        let entries = sample();
        let base = render(&entries);
        let dir = std::env::temp_dir().join(format!("lint-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        for bad in [
            "".to_owned(),
            "relia-lint-cache v0\n".to_owned(),
            base.replace("edge", "wedge"),
            base.replace("file ", "file extra "),
            base.replacen(HEADER, "not-a-header", 1),
        ] {
            std::fs::write(&path, &bad).unwrap();
            assert!(load(&path).is_none(), "accepted corrupt cache: {bad:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load(Path::new("/nonexistent/.lint-cache")).is_none());
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned reference values so the committed manifest format can
        // never drift silently.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}

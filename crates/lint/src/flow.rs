//! The flow-aware rules: what must not happen *while something is live*.
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | R8 `guard-across-blocking` | a live lock guard spans a blocking call | library code |
//! | R10 `unpolled-loop` | a loop evaluates the model without polling cancellation | handler/job library code |
//! | R11 `counter-leak` | a gauge is incremented but an early `return` skips the decrement | library code |
//!
//! All three run on the [`scope`](crate::scope) tracker's output. The
//! fourth flow rule, R9 `lock-order-inversion`, needs the *whole
//! workspace*: this module only extracts each file's nested-acquisition
//! edges ([`lock_edges`]); the graph lives in [`graph`](crate::graph).
//!
//! **R8.** A `MutexGuard`/`RwLock` guard held across `thread::sleep`,
//! socket I/O (`.accept(`, `.connect(`, `.read_to_end(`), a channel
//! `.recv(`, or a cold model evaluation (`delta_vth*`) serializes every
//! other acquirer behind an operation with unbounded latency. The fix is
//! almost always scope narrowing: bind the guard in a block, copy what is
//! needed, and drop it before blocking.
//!
//! **R10.** Handler and job code runs under cooperative cancellation
//! (`CancelToken`/`Deadline`); a loop that evaluates the model without a
//! per-iteration poll (`is_cancelled`, `fire_if_due`, `is_due`) turns the
//! watchdog into a no-op for exactly the iterations that dominate wall
//! time. A poll in any enclosing loop of the same function satisfies the
//! rule (chunked designs poll per chunk).
//!
//! **R11.** The serving tier's metrics ledger must balance: a gauge
//! incremented on an entry path (`*_enqueued`, `fetch_add` on a paired
//! atomic) must be decremented — or handed to a drop guard (`adopt*`) —
//! on *every* path out. The chaos suite asserts this dynamically; R11
//! catches the early `return` between the increment and its balance point
//! statically. A function is only checked when it contains the balance
//! point itself, so split enter/exit helpers stay legal.

use crate::diag::Diagnostic;
use crate::graph::LockEdge;
use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::{FileKind, FileOpts, RULE_IDS};
use crate::scope::{test_mod_spans, ScopeAnalysis};

/// Channel/socket method names that block with unbounded latency.
const BLOCKING_METHODS: [&str; 5] = ["recv", "recv_timeout", "accept", "connect", "read_to_end"];

/// Idents that poll cooperative cancellation.
const POLL_IDENTS: [&str; 3] = ["is_cancelled", "fire_if_due", "is_due"];

/// Method-name suffix pairs that form an entry/exit gauge.
const GAUGE_SUFFIX_PAIRS: [(&str, &str); 4] = [
    ("_enqueued", "_dequeued"),
    ("_acquired", "_released"),
    ("_entered", "_exited"),
    ("_started", "_finished"),
];

/// Runs the per-file flow rules (R8, R10, R11).
pub fn check(
    file: &str,
    lexed: &Lexed,
    scopes: &ScopeAnalysis,
    opts: &FileOpts,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if opts.kind != FileKind::Library {
        return out;
    }
    let toks = &lexed.tokens;
    let test_spans = test_mod_spans(toks);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);

    check_guard_across_blocking(file, toks, scopes, &in_test, &mut out);
    if opts.handler || opts.job {
        check_unpolled_loops(file, toks, scopes, &in_test, &mut out);
    }
    check_counter_leaks(file, toks, scopes, &in_test, &mut out);
    out
}

/// Extracts this file's lock-nesting edges for the workspace R9 graph:
/// one edge per (guard live over `first`, acquisition of `second`) pair.
pub fn lock_edges(lexed: &Lexed, scopes: &ScopeAnalysis, opts: &FileOpts) -> Vec<LockEdge> {
    if opts.kind != FileKind::Library {
        return Vec::new();
    }
    let test_spans = test_mod_spans(&lexed.tokens);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut edges = Vec::new();
    for g in &scopes.guards {
        if g.lock == "?" || in_test(g.line) {
            continue;
        }
        for a in &scopes.acquisitions {
            if a.tok > g.live.0
                && a.tok <= g.live.1
                && a.lock != g.lock
                && a.lock != "?"
                && !in_test(a.line)
            {
                edges.push(LockEdge {
                    first: g.lock.clone(),
                    second: a.lock.clone(),
                    first_line: g.line,
                    second_line: a.line,
                });
            }
        }
    }
    edges
}

/// True when the ident at `i` names a cold model evaluation.
fn is_model_eval(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokKind::Ident
        && toks[i].text.starts_with("delta_vth")
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

/// The blocking operation starting at token `i`, if any: a short label
/// for the diagnostic, or `None`.
fn blocking_op(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind == TokKind::Ident
        && t.text == "thread"
        && toks.get(i + 1).is_some_and(|t| t.text == "::")
        && toks.get(i + 2).is_some_and(|t| t.text == "sleep")
    {
        return Some("thread::sleep".to_owned());
    }
    if t.text == "."
        && toks.get(i + 1).is_some_and(|t| {
            t.kind == TokKind::Ident && BLOCKING_METHODS.contains(&t.text.as_str())
        })
        && toks.get(i + 2).is_some_and(|t| t.text == "(")
    {
        return Some(format!(".{}(", toks[i + 1].text));
    }
    if is_model_eval(toks, i) {
        return Some(format!("{}(", t.text));
    }
    None
}

/// R8: a live guard spans a blocking call.
fn check_guard_across_blocking(
    file: &str,
    toks: &[Token],
    scopes: &ScopeAnalysis,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for g in &scopes.guards {
        if in_test(g.line) {
            continue;
        }
        for i in (g.live.0 + 1)..=g.live.1.min(toks.len().saturating_sub(1)) {
            let Some(op) = blocking_op(toks, i) else {
                continue;
            };
            let site = if toks[i].text == "." { i + 1 } else { i };
            if in_test(toks[site].line) {
                continue;
            }
            out.push(Diagnostic {
                file: file.to_owned(),
                line: toks[site].line,
                col: toks[site].col,
                rule: RULE_IDS[7],
                message: format!(
                    "guard `{}` on lock `{}` (acquired line {}) is still live across `{op}` — \
                     every other acquirer now waits on this call; narrow the guard's scope or \
                     `drop({})` first",
                    g.var, g.lock, g.line, g.var
                ),
            });
        }
    }
}

/// R10: a loop evaluates the model with no cancellation poll in its body
/// or any enclosing loop of the same function.
fn check_unpolled_loops(
    file: &str,
    toks: &[Token],
    scopes: &ScopeAnalysis,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let contains_poll = |range: (usize, usize)| {
        toks[range.0..=range.1.min(toks.len().saturating_sub(1))]
            .iter()
            .any(|t| t.kind == TokKind::Ident && POLL_IDENTS.contains(&t.text.as_str()))
    };
    for l in &scopes.loops {
        if in_test(l.line) || l.body.0 >= toks.len() {
            continue;
        }
        let eval = (l.body.0..=l.body.1.min(toks.len().saturating_sub(1)))
            .find(|&i| is_model_eval(toks, i));
        let Some(eval) = eval else { continue };
        // The *innermost* loop around the evaluation owns the finding;
        // outer loops would double-report the same site.
        let innermost = scopes
            .loops_containing(eval)
            .into_iter()
            .max_by_key(|c| c.body.0)
            .map(|c| c.head);
        if innermost != Some(l.head) {
            continue;
        }
        let polled = scopes
            .loops_containing(eval)
            .iter()
            .any(|c| contains_poll(c.body));
        if polled {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_owned(),
            line: toks[eval].line,
            col: toks[eval].col,
            rule: RULE_IDS[9],
            message: format!(
                "loop (line {}) evaluates `{}` without polling a `CancelToken`/`Deadline` — \
                 the watchdog cannot cancel what never polls; check `is_cancelled`/`fire_if_due` \
                 each iteration (or once per chunk in an enclosing loop)",
                l.line, toks[eval].text
            ),
        });
    }
}

/// A gauge increment or decrement call site.
struct GaugeCall {
    /// Gauge identity: the receiver ident for `fetch_add`/`fetch_sub`,
    /// the method stem for suffix pairs (`conn` for `conn_enqueued`).
    id: String,
    /// Token index of the method-name ident.
    tok: usize,
    /// True for the increment side.
    inc: bool,
}

/// Collects every gauge-shaped call in the file.
fn gauge_calls(toks: &[Token]) -> Vec<GaugeCall> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "."
            || toks.get(i + 1).is_none_or(|t| t.kind != TokKind::Ident)
            || toks.get(i + 2).is_none_or(|t| t.text != "(")
        {
            continue;
        }
        let name = toks[i + 1].text.as_str();
        if name == "fetch_add" || name == "fetch_sub" {
            // Identity: the atomic's field/variable name before the dot.
            if let Some(prev) = i.checked_sub(1).and_then(|k| toks.get(k)) {
                if prev.kind == TokKind::Ident {
                    out.push(GaugeCall {
                        id: prev.text.clone(),
                        tok: i + 1,
                        inc: name == "fetch_add",
                    });
                }
            }
            continue;
        }
        for (inc_suffix, dec_suffix) in GAUGE_SUFFIX_PAIRS {
            if let Some(stem) = name.strip_suffix(inc_suffix) {
                out.push(GaugeCall {
                    id: stem.to_owned(),
                    tok: i + 1,
                    inc: true,
                });
            } else if let Some(stem) = name.strip_suffix(dec_suffix) {
                out.push(GaugeCall {
                    id: stem.to_owned(),
                    tok: i + 1,
                    inc: false,
                });
            }
        }
    }
    out
}

/// R11: within a function that both increments a gauge and balances it
/// later (decrement or `adopt*` drop-guard handoff), an intervening
/// `return` leaks the increment.
fn check_counter_leaks(
    file: &str,
    toks: &[Token],
    scopes: &ScopeAnalysis,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let calls = gauge_calls(toks);
    // A gauge is only a gauge when the file holds both sides.
    let is_gauge = |id: &str| {
        calls.iter().any(|c| c.inc && c.id == id) && calls.iter().any(|c| !c.inc && c.id == id)
    };
    let is_handoff = |t: &Token| t.kind == TokKind::Ident && t.text.contains("adopt");
    for call in calls.iter().filter(|c| c.inc && is_gauge(&c.id)) {
        if in_test(toks[call.tok].line) {
            continue;
        }
        let Some(f) = scopes.function_of(call.tok) else {
            continue;
        };
        let body_end = f.body.1.min(toks.len().saturating_sub(1));
        // The balance point: the next decrement or handoff of this gauge
        // in the same function. Without one the function is an
        // enter-only helper and stays out of scope.
        let balance = calls
            .iter()
            .find(|c| !c.inc && c.id == call.id && c.tok > call.tok && c.tok <= body_end);
        let handoff = (call.tok + 1..=body_end).find(|&i| is_handoff(&toks[i]));
        let balance_tok = match (balance.map(|c| c.tok), handoff) {
            (Some(b), Some(h)) => b.min(h),
            (Some(b), None) => b,
            (None, Some(h)) => h,
            (None, None) => continue,
        };
        for i in (call.tok + 1)..balance_tok {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "return" && !in_test(t.line) {
                out.push(Diagnostic {
                    file: file.to_owned(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_IDS[10],
                    message: format!(
                        "gauge `{}` incremented at line {} has no decrement or drop-guard \
                         handoff before this `return` — the metrics ledger can never balance \
                         again; decrement on the early path or adopt a guard first",
                        call.id, toks[call.tok].line
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn lib() -> FileOpts {
        FileOpts {
            kind: FileKind::Library,
            crate_root: false,
            handler: false,
            job: false,
        }
    }

    fn job() -> FileOpts {
        FileOpts { job: true, ..lib() }
    }

    fn run(src: &str, opts: FileOpts) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let scopes = scope::analyze(&lexed);
        check("f.rs", &lexed, &scopes, &opts)
    }

    #[test]
    fn r8_flags_guard_across_sleep_and_recv() {
        let src = "pub fn f(m: &Mutex<u8>, rx: &Mutex<Receiver<u8>>) {\n\
                   let g = m.lock().unwrap();\n\
                   thread::sleep(d);\n\
                   let q = rx.lock().unwrap();\n\
                   let item = q.recv();\n\
                   }\n";
        let d = run(src, lib());
        let r8: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "guard-across-blocking")
            .collect();
        // g spans sleep + recv; q spans recv.
        assert_eq!(r8.len(), 3, "{d:?}");
        assert_eq!(r8[0].line, 3);
    }

    #[test]
    fn r8_respects_drop_and_scoping() {
        let src = "pub fn f(m: &Mutex<u8>) {\n\
                   let g = m.lock().unwrap();\n\
                   let v = *g;\n\
                   drop(g);\n\
                   thread::sleep(d);\n\
                   { let h = m.lock().unwrap(); }\n\
                   thread::sleep(d);\n\
                   }\n";
        let d = run(src, lib());
        assert!(d.iter().all(|d| d.rule != "guard-across-blocking"), "{d:?}");
    }

    #[test]
    fn r8_flags_model_eval_under_guard() {
        let src = "pub fn f(c: &Mutex<Cache>) {\n\
                   let g = c.lock().unwrap();\n\
                   let dv = model.delta_vth(key);\n\
                   }\n";
        let d = run(src, lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("delta_vth"));
    }

    #[test]
    fn r10_flags_unpolled_eval_loops_in_job_code_only() {
        let src = "pub fn f(points: &[P]) {\n\
                   for p in points {\n\
                   let dv = delta_vth(p);\n\
                   }\n\
                   }\n";
        let d = run(src, job());
        assert_eq!(d.iter().filter(|d| d.rule == "unpolled-loop").count(), 1);
        assert!(run(src, lib()).iter().all(|d| d.rule != "unpolled-loop"));
    }

    #[test]
    fn r10_accepts_polls_in_body_or_enclosing_loop() {
        let polled = "pub fn f(points: &[P], cancel: &CancelToken) {\n\
                      for p in points {\n\
                      if cancel.is_cancelled() { return; }\n\
                      let dv = delta_vth(p);\n\
                      }\n\
                      }\n";
        assert!(run(polled, job()).is_empty());
        let chunked = "pub fn f(chunks: &[C], d: &Deadline) {\n\
                       for c in chunks {\n\
                       if d.fire_if_due(now) { return; }\n\
                       for p in c.points { let dv = delta_vth(p); }\n\
                       }\n\
                       }\n";
        assert!(run(chunked, job()).is_empty());
    }

    #[test]
    fn r11_flags_early_return_between_inc_and_dec() {
        let src = "pub fn f(m: &M) -> Result<(), E> {\n\
                   m.conn_enqueued();\n\
                   if full() {\n\
                   return Err(E::Shed);\n\
                   }\n\
                   work();\n\
                   m.conn_dequeued();\n\
                   Ok(())\n\
                   }\n";
        let d = run(src, lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "counter-leak");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn r11_accepts_balanced_paths_handoffs_and_split_helpers() {
        let balanced = "pub fn f(m: &M) {\n\
                        m.conn_enqueued();\n\
                        if full() { m.conn_dequeued(); return; }\n\
                        work();\n\
                        m.conn_dequeued();\n\
                        }\n";
        assert!(run(balanced, lib()).is_empty());
        let handoff = "pub fn f(m: &M) {\n\
                       m.conn_enqueued();\n\
                       let _g = m.adopt_inflight();\n\
                       if full() { return; }\n\
                       m.conn_dequeued();\n\
                       }\n";
        assert!(run(handoff, lib()).is_empty());
        // Enter-only helper: the dec lives in another function.
        let split = "pub fn enter(m: &M) { m.conn_enqueued(); if x { return; } }\n\
                     pub fn leave(m: &M) { m.conn_dequeued(); }\n";
        assert!(run(split, lib()).is_empty());
    }

    #[test]
    fn r11_ignores_monotone_counters() {
        let src = "pub fn f(m: &M) {\n\
                   m.requests.fetch_add(1, Relaxed);\n\
                   if bad() { return; }\n\
                   work();\n\
                   }\n";
        assert!(run(src, lib()).is_empty());
    }

    #[test]
    fn lock_edges_record_nesting_order() {
        let src = "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                   let ga = a.lock().unwrap();\n\
                   let gb = b.lock().unwrap();\n\
                   }\n";
        let lexed = lex(src);
        let scopes = scope::analyze(&lexed);
        let edges = lock_edges(&lexed, &scopes, &lib());
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(
            (edges[0].first.as_str(), edges[0].second.as_str()),
            ("a", "b")
        );
    }
}

//! The domain rules.
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | R1 `unit-leak` | unit-named `pub fn` param / struct field typed bare `f64` | everywhere |
//! | R2 `unwrap-in-lib` | `.unwrap()` / `.expect(` | library code (bins, `#[cfg(test)]` exempt) |
//! | R3 `float-eq` | `==` / `!=` against a non-zero float literal | non-test code |
//! | R4 `print-in-lib` | `println!` / `eprintln!` | library code (bins, `#[cfg(test)]` exempt) |
//! | R5 `missing-forbid-unsafe` | crate root lacks `#![forbid(unsafe_code)]` | `lib.rs` files |
//! | R6 `celsius-kelvin` | literal in (0, 150] wrapped directly in `Kelvin(...)` | everywhere |
//! | R7 `blocking-in-handler` | `thread::sleep` / `.read_to_end(` | handler library code (`#[cfg(test)]` exempt) |
//! | R8 `guard-across-blocking` | live lock guard spans a blocking call | library code ([`crate::flow`]) |
//! | R9 `lock-order-inversion` | locks acquired in opposite nesting order | whole workspace ([`crate::graph`]) |
//! | R10 `unpolled-loop` | model-evaluating loop never polls cancellation | handler/job library code ([`crate::flow`]) |
//! | R11 `counter-leak` | gauge inc'd, early `return` skips the dec | library code ([`crate::flow`]) |
//!
//! Comparisons against exactly `0.0` are exempt from R3: an exact-zero
//! sentinel check is well-defined in IEEE-754 and idiomatic in this
//! codebase (`duty_cycle == 0.0`). R6's lower bound is likewise exclusive
//! so `Kelvin(0.0)` (absolute zero, used by physicality tests) stays legal
//! while `Kelvin(85.0)` — almost certainly 85 °C — is caught.
//!
//! R7 applies only to files classified as request-handler code (today:
//! `crates/serve/src/`). A worker thread that sleeps or slurps an
//! unbounded body holds a pool slot hostage and defeats the server's
//! deadline/backpressure design; handlers must wait on
//! `Condvar::wait_timeout` and read request bodies with bounded,
//! incremental `read` calls instead.

use crate::diag::Diagnostic;
use crate::lexer::{literal_value, Lexed, TokKind, Token};
use crate::scope::test_mod_spans;

/// How a file participates in the build, for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a library crate's `src/` tree.
    Library,
    /// A binary target (`src/bin/*`, `main.rs`).
    Binary,
}

/// Per-file lint context.
#[derive(Debug, Clone, Copy)]
pub struct FileOpts {
    /// Library or binary.
    pub kind: FileKind,
    /// True for a crate root (`lib.rs`), where R5 applies.
    pub crate_root: bool,
    /// True for request-handler library code (the serve crate), where R7
    /// applies.
    pub handler: bool,
    /// True for background-job/engine library code (the jobs and fleet
    /// crates), where R10 applies alongside handler code.
    pub job: bool,
}

/// One rule's registry entry: everything the alias resolver, `--list-rules`,
/// and the SARIF writer need. Adding a rule is one row here plus its checker.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Canonical id (`unit-leak`, …). The `R<n>` alias is positional.
    pub id: &'static str,
    /// One-line summary, used as the SARIF rule description.
    pub summary: &'static str,
}

/// The rule registry, in rule order (`RULES[n - 1]` is `R<n>`).
pub const RULES: [RuleInfo; 11] = [
    RuleInfo {
        id: "unit-leak",
        summary: "unit-named pub field/param typed bare f64",
    },
    RuleInfo {
        id: "unwrap-in-lib",
        summary: ".unwrap()/.expect( in library code",
    },
    RuleInfo {
        id: "float-eq",
        summary: "==/!= against a non-zero float literal",
    },
    RuleInfo {
        id: "print-in-lib",
        summary: "println!/eprintln! in library code",
    },
    RuleInfo {
        id: "missing-forbid-unsafe",
        summary: "crate root lacks #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "celsius-kelvin",
        summary: "celsius-looking literal wrapped in Kelvin(...)",
    },
    RuleInfo {
        id: "blocking-in-handler",
        summary: "blocking call in request-handler code",
    },
    RuleInfo {
        id: "guard-across-blocking",
        summary: "live lock guard spans a blocking call",
    },
    RuleInfo {
        id: "lock-order-inversion",
        summary: "locks acquired in opposite nesting order across the workspace",
    },
    RuleInfo {
        id: "unpolled-loop",
        summary: "model-evaluating loop never polls cancellation",
    },
    RuleInfo {
        id: "counter-leak",
        summary: "gauge incremented but an early return skips the decrement",
    },
];

/// Canonical rule ids, in rule order — derived from [`RULES`].
pub const RULE_IDS: [&str; RULES.len()] = {
    let mut ids = [""; RULES.len()];
    let mut i = 0;
    while i < RULES.len() {
        ids[i] = RULES[i].id;
        i += 1;
    }
    ids
};

/// Resolves a rule name or `R<n>` alias to the canonical id.
pub fn rule_by_name(name: &str) -> Option<&'static str> {
    let alias = name
        .strip_prefix('R')
        .or_else(|| name.strip_prefix('r'))
        .and_then(|n| n.parse::<usize>().ok())
        .and_then(|n| n.checked_sub(1))
        .and_then(|i| RULES.get(i));
    alias
        .or_else(|| RULES.iter().find(|r| r.id == name))
        .map(|r| r.id)
}

/// Field/parameter names that denote a physical quantity and therefore must
/// carry a unit newtype instead of a bare `f64`.
fn is_unit_name(name: &str) -> bool {
    matches!(
        name,
        "temp" | "t_active" | "t_standby" | "duration" | "period" | "lifetime" | "lifetimes"
    ) || name.starts_with("temp_")
        || (name.len() > 2 && name.ends_with("_k"))
}

/// Runs every rule over one lexed file, returning raw (pre-pragma)
/// violations.
pub fn check(file: &str, lexed: &Lexed, opts: &FileOpts) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let test_spans = test_mod_spans(toks);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = Vec::new();

    let mut push = |tok: &Token, rule: &'static str, message: String| {
        out.push(Diagnostic {
            file: file.to_owned(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    };

    // --- R1: unit-named f64 struct fields and pub fn params. ---
    for (tok, context) in raw_unit_leaks(toks) {
        push(
            tok,
            RULE_IDS[0],
            format!(
                "{context} `{}` is a bare `f64` — use `Kelvin`/`Seconds` from relia-core so \
                 kelvin/celsius and stress/wall seconds cannot be confused",
                tok.text
            ),
        );
    }

    // --- R2: unwrap/expect in library code. ---
    if opts.kind == FileKind::Library {
        for w in toks.windows(2) {
            if w[0].kind == TokKind::Punct
                && w[0].text == "."
                && w[1].kind == TokKind::Ident
                && (w[1].text == "unwrap" || w[1].text == "expect")
                && !in_test(w[1].line)
            {
                push(
                    &w[1],
                    RULE_IDS[1],
                    format!(
                        "`.{}(...)` in library code — return a typed error, or justify the \
                         invariant with `// relia-lint: allow(unwrap-in-lib)`",
                        w[1].text
                    ),
                );
            }
        }
    }

    // --- R3: float equality. ---
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || in_test(t.line) {
            continue;
        }
        let float_operand = |tok: Option<&Token>| -> bool {
            tok.is_some_and(|tok| {
                tok.kind == TokKind::Float && literal_value(&tok.text).is_some_and(|v| v != 0.0)
            })
        };
        if float_operand(i.checked_sub(1).and_then(|k| toks.get(k)))
            || float_operand(toks.get(i + 1))
        {
            push(
                t,
                RULE_IDS[2],
                format!(
                    "float `{}` against a non-zero literal — compare with a tolerance \
                     (rounding makes exact equality fragile)",
                    t.text
                ),
            );
        }
    }

    // --- R4: println!/eprintln! in library code. ---
    if opts.kind == FileKind::Library {
        for w in toks.windows(2) {
            if w[0].kind == TokKind::Ident
                && (w[0].text == "println" || w[0].text == "eprintln")
                && w[1].text == "!"
                && !in_test(w[0].line)
            {
                push(
                    &w[0],
                    RULE_IDS[3],
                    format!(
                        "`{}!` in library code — return data or thread a sink; only binaries \
                         own stdout/stderr",
                        w[0].text
                    ),
                );
            }
        }
    }

    // --- R5: crate root must forbid unsafe code. ---
    if opts.crate_root && !has_forbid_unsafe(toks) {
        out.push(Diagnostic {
            file: file.to_owned(),
            line: 1,
            col: 1,
            rule: RULE_IDS[4],
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
        });
    }

    // --- R6: celsius-looking literal inside Kelvin(...). ---
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "Kelvin"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 3).is_some_and(|t| t.text == ")")
        {
            if let Some(lit) = toks.get(i + 2) {
                if matches!(lit.kind, TokKind::Int | TokKind::Float) {
                    if let Some(v) = literal_value(&lit.text) {
                        if v > 0.0 && v <= 150.0 {
                            out.push(Diagnostic {
                                file: file.to_owned(),
                                line: lit.line,
                                col: lit.col,
                                rule: RULE_IDS[5],
                                message: format!(
                                    "`Kelvin({})` is {v} K — cryogenic; this looks like a \
                                     celsius value, use `Kelvin::from_celsius({})`",
                                    lit.text, lit.text
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // --- R7: blocking primitives in request-handler library code. ---
    if opts.handler && opts.kind == FileKind::Library {
        for w in toks.windows(3) {
            if w[0].kind == TokKind::Ident
                && w[0].text == "thread"
                && w[1].text == "::"
                && w[2].kind == TokKind::Ident
                && w[2].text == "sleep"
                && !in_test(w[2].line)
            {
                out.push(Diagnostic {
                    file: file.to_owned(),
                    line: w[2].line,
                    col: w[2].col,
                    rule: RULE_IDS[6],
                    message: "`thread::sleep` in handler code pins a worker-pool slot and \
                              ignores the request deadline — wait on `Condvar::wait_timeout` \
                              or check `Deadline::fire_if_due` instead"
                        .to_owned(),
                });
            }
        }
        for w in toks.windows(2) {
            if w[0].kind == TokKind::Punct
                && w[0].text == "."
                && w[1].kind == TokKind::Ident
                && w[1].text == "read_to_end"
                && !in_test(w[1].line)
            {
                out.push(Diagnostic {
                    file: file.to_owned(),
                    line: w[1].line,
                    col: w[1].col,
                    rule: RULE_IDS[6],
                    message: "`.read_to_end(...)` in handler code reads without a byte bound \
                              — an oversized or never-ending body wedges the worker; read \
                              incrementally against `Limits::max_body`"
                        .to_owned(),
                });
            }
        }
    }

    out
}

/// True when the token stream opens with (or anywhere contains) the inner
/// attribute `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Finds R1 sites: unit-named `ident : f64` (or `Vec<f64>`) in struct bodies
/// and `pub fn` parameter lists. Returns the offending name token plus a
/// context label.
fn raw_unit_leaks(toks: &[Token]) -> Vec<(&Token, &'static str)> {
    let mut hits = Vec::new();

    // Struct fields.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "struct" {
            // Skip name and any generics, find `{` (tuple/unit structs end
            // at `(` or `;` and carry no named fields).
            let mut j = i + 1;
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle == 0 => break,
                    "(" | ";" if angle == 0 => {
                        j = toks.len();
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() {
                let mut depth = 0i32;
                let mut k = j;
                while k + 2 < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    // A field at depth 1: `name : f64` with `name` starting
                    // a field (previous token is `{`, `,`, or `]` from an
                    // attribute, or `pub`/`)` from a visibility modifier).
                    if depth == 1
                        && toks[k + 1].kind == TokKind::Ident
                        && toks[k + 2].text == ":"
                        && matches!(toks[k].text.as_str(), "{" | "," | "]" | "pub" | ")")
                        && is_unit_name(&toks[k + 1].text)
                        && bare_f64_type(&toks[k + 3..])
                    {
                        hits.push((&toks[k + 1], "struct field"));
                    }
                    k += 1;
                }
                i = k;
            } else {
                i = j;
            }
        }
        i += 1;
    }

    // pub fn parameters.
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "pub") {
            i += 1;
            continue;
        }
        // Skip `pub(crate)` / `pub(in …)`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "(") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if toks.get(j).is_none_or(|t| t.text != "fn") {
            i += 1;
            continue;
        }
        // Skip fn name + generics to the opening paren.
        let mut k = j + 1;
        let mut angle = 0i32;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle == 0 => break,
                _ => {}
            }
            k += 1;
        }
        // Scan params at paren depth 1.
        let mut depth = 0i32;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if depth == 1
                && k + 2 < toks.len()
                && toks[k + 1].kind == TokKind::Ident
                && toks[k + 2].text == ":"
                && matches!(toks[k].text.as_str(), "(" | ",")
                && is_unit_name(&toks[k + 1].text)
                && bare_f64_type(&toks[k + 3..])
            {
                hits.push((&toks[k + 1], "pub fn parameter"));
            }
            k += 1;
        }
        i = k + 1;
    }

    hits
}

/// True when the type starting at `rest[0]` is exactly `f64` or `Vec<f64>`
/// (terminated by `,`, `)`, or `}`).
fn bare_f64_type(rest: &[Token]) -> bool {
    let ends = |t: Option<&Token>| t.is_none_or(|t| matches!(t.text.as_str(), "," | ")" | "}"));
    if rest.first().is_some_and(|t| t.text == "f64") {
        return ends(rest.get(1));
    }
    if rest.len() >= 4
        && rest[0].text == "Vec"
        && rest[1].text == "<"
        && rest[2].text == "f64"
        && rest[3].text == ">"
    {
        return ends(rest.get(4));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib() -> FileOpts {
        FileOpts {
            kind: FileKind::Library,
            crate_root: false,
            handler: false,
            job: false,
        }
    }

    fn handler() -> FileOpts {
        FileOpts {
            handler: true,
            ..lib()
        }
    }

    fn check_src(src: &str, opts: FileOpts) -> Vec<Diagnostic> {
        check("f.rs", &lex(src), &opts)
    }

    #[test]
    fn rule_aliases_resolve() {
        assert_eq!(rule_by_name("R1"), Some("unit-leak"));
        assert_eq!(rule_by_name("unwrap-in-lib"), Some("unwrap-in-lib"));
        assert_eq!(rule_by_name("R7"), Some("blocking-in-handler"));
        assert_eq!(rule_by_name("R9"), Some("lock-order-inversion"));
        assert_eq!(rule_by_name("r11"), Some("counter-leak"));
        assert_eq!(rule_by_name("R12"), None);
        assert_eq!(rule_by_name("R0"), None);
        assert_eq!(rule_by_name("bogus"), None);
    }

    #[test]
    fn r1_flags_struct_fields_and_pub_fn_params() {
        let src = "pub struct S { pub t_standby: f64, ok: Kelvin }\n\
                   pub fn f(temp: f64, watts: f64) {}\n";
        let d = check_src(src, lib());
        let r1: Vec<_> = d.iter().filter(|d| d.rule == "unit-leak").collect();
        assert_eq!(r1.len(), 2, "{d:?}");
        assert_eq!(r1[0].line, 1);
        assert_eq!(r1[1].line, 2);
    }

    #[test]
    fn r1_flags_vec_f64_axes_and_k_suffix() {
        let src = "pub struct Grid { lifetimes: Vec<f64> }\npub fn g(ambient_k: f64) {}\n";
        let d = check_src(src, lib());
        assert_eq!(d.iter().filter(|d| d.rule == "unit-leak").count(), 2);
    }

    #[test]
    fn r1_ignores_private_fns_closures_and_typed_params() {
        let src = "fn private(temp: f64) {}\n\
                   pub fn typed(temp: Kelvin, period: Seconds) {}\n\
                   pub fn closure() { let f = |temp: f64| temp; }\n";
        let d = check_src(src, lib());
        assert!(d.iter().all(|d| d.rule != "unit-leak"), "{d:?}");
    }

    #[test]
    fn r2_flags_library_unwrap_but_not_tests_or_bins() {
        let src = "pub fn f() { x.unwrap(); y.expect(\"m\"); }\n\
                   #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n";
        let d = check_src(src, lib());
        assert_eq!(d.iter().filter(|d| d.rule == "unwrap-in-lib").count(), 2);
        let bin = check_src(
            src,
            FileOpts {
                kind: FileKind::Binary,
                crate_root: false,
                handler: false,
                job: false,
            },
        );
        assert!(bin.iter().all(|d| d.rule != "unwrap-in-lib"));
    }

    #[test]
    fn r3_flags_nonzero_float_eq_only() {
        let src = "fn f() { if x == 1.5 {} if x != 2e3 {} if x == 0.0 {} if n == 3 {} }\n";
        let d = check_src(src, lib());
        assert_eq!(d.iter().filter(|d| d.rule == "float-eq").count(), 2);
    }

    #[test]
    fn r4_flags_println_in_lib_only() {
        let src = "pub fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        assert_eq!(check_src(src, lib()).len(), 2);
        let bin = check_src(
            src,
            FileOpts {
                kind: FileKind::Binary,
                crate_root: false,
                handler: false,
                job: false,
            },
        );
        assert!(bin.is_empty());
    }

    #[test]
    fn r5_checks_crate_roots() {
        let root = FileOpts {
            kind: FileKind::Library,
            crate_root: true,
            handler: false,
            job: false,
        };
        let missing = check_src("pub fn f() {}\n", root);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, "missing-forbid-unsafe");
        let present = check_src("#![forbid(unsafe_code)]\npub fn f() {}\n", root);
        assert!(present.is_empty());
        assert!(check_src("pub fn f() {}\n", lib()).is_empty());
    }

    #[test]
    fn r6_flags_cryogenic_kelvin_literals() {
        let src = "fn f() { let a = Kelvin(85.0); let b = Kelvin(330.0); \
                   let c = Kelvin(0.0); let d = Kelvin(t_c + 273.15); }\n";
        let d = check_src(src, lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "celsius-kelvin");
        assert!(d[0].message.contains("from_celsius"));
    }

    #[test]
    fn r7_flags_blocking_calls_in_handler_code_only() {
        let src = "pub fn f(r: &mut impl Read) {\n\
                   std::thread::sleep(d);\n\
                   thread::sleep(d);\n\
                   r.read_to_end(&mut buf);\n\
                   }\n";
        let d = check_src(src, handler());
        let r7: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "blocking-in-handler")
            .collect();
        assert_eq!(r7.len(), 3, "{d:?}");
        assert_eq!(r7[0].line, 2);
        assert_eq!(r7[1].line, 3);
        assert_eq!(r7[2].line, 4);
        // Same source outside handler scope — or in a binary — is legal.
        assert!(check_src(src, lib())
            .iter()
            .all(|d| d.rule != "blocking-in-handler"));
        let bin = FileOpts {
            kind: FileKind::Binary,
            ..handler()
        };
        assert!(check_src(src, bin)
            .iter()
            .all(|d| d.rule != "blocking-in-handler"));
    }

    #[test]
    fn r7_exempts_test_modules_and_nonblocking_reads() {
        let src = "pub fn ok(r: &mut impl Read) { r.read_exact(&mut buf); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { thread::sleep(d); }\n}\n";
        let d = check_src(src, handler());
        assert!(d.iter().all(|d| d.rule != "blocking-in-handler"), "{d:?}");
    }

    #[test]
    fn test_mod_exemption_covers_nested_braces() {
        let src = "#[cfg(test)]\nmod tests {\n fn a() { if x { y.unwrap(); } }\n}\n\
                   pub fn real() { z.unwrap(); }\n";
        let d = check_src(src, lib());
        assert_eq!(d.iter().filter(|d| d.rule == "unwrap-in-lib").count(), 1);
        assert_eq!(d[0].line, 5);
    }
}

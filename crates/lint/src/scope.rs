//! Scope tracking: the flow-aware layer between the lexer and the rules.
//!
//! The token-stream rules (R1–R7) ask "does this pattern occur?"; the
//! concurrency rules (R8–R11) ask "does it occur *while* something else is
//! live?". This module answers the second kind of question without a real
//! parser: a brace/paren-aware pass over the lexed token stream recovers
//!
//! * **function spans** — every `fn` with a body, innermost-wins for
//!   nested items and closures are left inline (a closure's body belongs
//!   to the function that builds it, which is where its locks live);
//! * **block structure** — a matching-brace map, so a binding's enclosing
//!   block (its drop scope) is known;
//! * **lock-guard bindings** — `let g = x.lock()…;`, `if let Ok(g) =
//!   x.read()`, and friends, each with the *lock identity* (the receiver's
//!   field/variable name) and the token range the guard is live over
//!   (binding to end of enclosing block, truncated by `drop(g)`);
//! * **loop bodies** — `loop`/`while`/`for` spans with their enclosing
//!   loop chain, for per-iteration poll checks.
//!
//! The tracker shares the lexer's contract: it must never panic and must
//! return *balanced* spans (`start <= end`, ends clamped to the token
//! stream) on arbitrary — including syntactically invalid — input, because
//! it runs on whatever bytes the tree contains. A proptest pins this.

use crate::lexer::{Lexed, TokKind, Token};

/// Methods whose no-argument call form acquires a synchronization guard.
/// `.read()`/`.write()` with arguments are I/O, not locks — the empty
/// parens are what disambiguate `RwLock::read()` from `Read::read(buf)`.
pub const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One lock-guard binding and the range it is live over.
#[derive(Debug, Clone)]
pub struct GuardBinding {
    /// The bound variable (`guard` in `let guard = m.lock()…`).
    pub var: String,
    /// Lock identity: the receiver's last field/variable name (`slow` for
    /// `self.slow.lock()`). `?` when the receiver is not a plain path.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Token range `[start, end]` the guard is live over: from the
    /// acquisition to the end of the enclosing block, truncated at an
    /// explicit `drop(var)`.
    pub live: (usize, usize),
}

/// One bare lock acquisition site (bound or inline).
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Lock identity (see [`GuardBinding::lock`]).
    pub lock: String,
    /// Token index of the method-name token.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// One `loop`/`while`/`for` body.
#[derive(Debug, Clone)]
pub struct LoopScope {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Token index of the loop keyword.
    pub head: usize,
    /// Token range `[open, close]` of the body braces.
    pub body: (usize, usize),
}

/// One function with a body.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// Function name (`<anon>` when the header is malformed).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub head: usize,
    /// Token range `[open, close]` of the body braces.
    pub body: (usize, usize),
}

/// The scope-tracking result for one file.
#[derive(Debug, Default)]
pub struct ScopeAnalysis {
    /// Functions with bodies, in source order.
    pub functions: Vec<FnScope>,
    /// Guard bindings, in source order.
    pub guards: Vec<GuardBinding>,
    /// Every lock acquisition, in source order.
    pub acquisitions: Vec<Acquisition>,
    /// Loop bodies, in source order.
    pub loops: Vec<LoopScope>,
    /// `match_brace[i]` for an opening-brace token `i` is its closing
    /// brace (clamped to the last token when unbalanced); other indices
    /// map to themselves.
    match_brace: Vec<usize>,
    /// Innermost enclosing block close for each token (stream end when at
    /// top level).
    enclosing_close: Vec<usize>,
}

impl ScopeAnalysis {
    /// The close-brace token index of the innermost block containing
    /// token `i` (the last token index when `i` is at top level or out of
    /// range).
    pub fn enclosing_block_end(&self, i: usize) -> usize {
        self.enclosing_close
            .get(i)
            .copied()
            .unwrap_or_else(|| self.enclosing_close.len().saturating_sub(1))
    }

    /// The innermost function whose body contains token `i`.
    pub fn function_of(&self, i: usize) -> Option<&FnScope> {
        self.functions
            .iter()
            .filter(|f| f.body.0 <= i && i <= f.body.1)
            .max_by_key(|f| f.body.0)
    }

    /// Loops (outermost first) whose bodies contain token `i`.
    pub fn loops_containing(&self, i: usize) -> Vec<&LoopScope> {
        self.loops
            .iter()
            .filter(|l| l.body.0 <= i && i <= l.body.1)
            .collect()
    }
}

/// Runs the scope tracker over a lexed file. Never panics; malformed
/// input degrades to clamped spans rather than an error.
pub fn analyze(lexed: &Lexed) -> ScopeAnalysis {
    let toks = &lexed.tokens;
    let mut out = ScopeAnalysis {
        match_brace: brace_map(toks),
        ..ScopeAnalysis::default()
    };
    out.enclosing_close = enclosing_map(toks, &out.match_brace);
    find_functions(toks, &out.match_brace, &mut out.functions);
    find_loops(toks, &out.match_brace, &mut out.loops);
    find_acquisitions(toks, &mut out.acquisitions);
    out.guards = find_guards(toks, &out.match_brace, &out.enclosing_close);
    out
}

/// Matching-close index for every opening brace; identity elsewhere.
/// Unbalanced opens clamp to the last token.
fn brace_map(toks: &[Token]) -> Vec<usize> {
    let mut map: Vec<usize> = (0..toks.len()).collect();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    map[open] = i;
                }
            }
            _ => {}
        }
    }
    let last = toks.len().saturating_sub(1);
    for open in stack {
        map[open] = last;
    }
    map
}

/// Innermost enclosing block close for every token index.
fn enclosing_map(toks: &[Token], match_brace: &[usize]) -> Vec<usize> {
    let last = toks.len().saturating_sub(1);
    let mut out = vec![last; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..toks.len() {
        while let Some(&close) = stack.last() {
            if i > close {
                stack.pop();
            } else {
                break;
            }
        }
        out[i] = stack.last().copied().unwrap_or(last);
        if toks[i].text == "{" {
            stack.push(match_brace[i]);
        }
    }
    out
}

/// Collects `fn name … { … }` spans. Trait declarations (`fn f();`) have
/// no body and are skipped.
fn find_functions(toks: &[Token], match_brace: &[usize], out: &mut Vec<FnScope>) {
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        let name = toks
            .get(i + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "<anon>".to_owned(), |t| t.text.clone());
        // Scan to the body `{` at zero paren/angle depth; a `;` first
        // means a bodyless declaration.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = open {
            out.push(FnScope {
                name,
                head: i,
                body: (open, match_brace[open]),
            });
        }
    }
}

/// Collects `loop`/`while`/`for` body spans.
fn find_loops(toks: &[Token], match_brace: &[usize], out: &mut Vec<LoopScope>) {
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident
            && matches!(toks[i].text.as_str(), "loop" | "while" | "for"))
        {
            continue;
        }
        // `for` in `impl Trait for T` is not a loop: its body brace is an
        // impl block. Disambiguate by the preceding token.
        if toks[i].text == "for"
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ">")
        {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => {
                    out.push(LoopScope {
                        line: toks[i].line,
                        head: i,
                        body: (j, match_brace[j]),
                    });
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
}

/// True when tokens at `i` are an empty-parens lock call: `. lock ( )`.
fn is_lock_call(toks: &[Token], i: usize) -> bool {
    toks[i].text == "."
        && toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Ident && LOCK_METHODS.contains(&t.text.as_str()))
        && toks.get(i + 2).is_some_and(|t| t.text == "(")
        && toks.get(i + 3).is_some_and(|t| t.text == ")")
}

/// The lock identity for the call at `.`-token `i`: the last plain ident
/// of the receiver chain (`slow` for `self.slow.lock()`), skipping one
/// balanced `(…)`/`[…]` group (`shard` for `self.shard(k).lock()`).
fn lock_identity(toks: &[Token], i: usize) -> String {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ")" | "]" => {
                let close = toks[j].text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].text == close {
                        depth += 1;
                    } else if toks[j].text == open {
                        depth -= 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        if toks[j].kind == TokKind::Ident {
            return toks[j].text.clone();
        }
        return "?".to_owned();
    }
    "?".to_owned()
}

/// Collects every lock acquisition site.
fn find_acquisitions(toks: &[Token], out: &mut Vec<Acquisition>) {
    for i in 0..toks.len() {
        if is_lock_call(toks, i) {
            out.push(Acquisition {
                lock: lock_identity(toks, i),
                tok: i + 1,
                line: toks[i + 1].line,
            });
        }
    }
}

/// Collects guard bindings: a `let` (plain, `if let`, or `while let`)
/// whose initializer contains a lock acquisition. The guard is live from
/// the acquisition to the end of the enclosing block (plain `let`) or the
/// bound block (`if let`/`while let`), truncated by `drop(var)`.
fn find_guards(toks: &[Token], match_brace: &[usize], enclosing: &[usize]) -> Vec<GuardBinding> {
    let last = toks.len().saturating_sub(1);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            continue;
        }
        let conditional = i > 0
            && toks[i - 1].kind == TokKind::Ident
            && matches!(toks[i - 1].text.as_str(), "if" | "while");
        // Pattern: tokens between `let` and the first `=` at depth 0
        // (`==` is a distinct token, so plain comparisons cannot confuse
        // this).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut eq = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "=" if depth <= 0 => {
                    eq = Some(j);
                    break;
                }
                ";" | "{" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { continue };
        let var = pattern_var(&toks[i + 1..eq]);
        // Initializer: from `=` to the statement end — `;` at depth 0 for
        // a plain let, the body `{` at depth 0 for `if let`/`while let`.
        let mut depth = 0i32;
        let mut k = eq + 1;
        let mut end = None;
        let mut inner_let = false;
        let mut acquisition: Option<(usize, u32, String)> = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 && conditional => {
                    end = Some(k);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                // A nested `let` inside a block-expression initializer
                // owns any acquisition after it (`let v = { let g =
                // m.lock(); … }` does not make `v` a guard).
                "let" => inner_let = true,
                ";" if depth <= 0 => {
                    end = Some(k);
                    break;
                }
                _ => {}
            }
            if !inner_let && acquisition.is_none() && is_lock_call(toks, k) {
                acquisition = Some((k + 1, toks[k + 1].line, lock_identity(toks, k)));
            }
            k += 1;
        }
        let (Some(end), Some((acq_tok, acq_line, lock))) = (end, acquisition) else {
            continue;
        };
        let Some(var) = var else { continue };
        // Live range: binding statement end to the drop scope's close.
        let live_end = if conditional && toks[end].text == "{" {
            match_brace.get(end).copied().unwrap_or(end)
        } else {
            enclosing.get(i).copied().unwrap_or(last)
        };
        let live_end = truncate_at_drop(toks, &var, end, live_end);
        out.push(GuardBinding {
            var,
            lock,
            line: acq_line,
            live: (acq_tok, live_end.max(acq_tok)),
        });
    }
    out
}

/// The guard variable bound by a `let` pattern: the last ident that is not
/// a binding keyword or an enum constructor (`Ok(mut guard)` → `guard`).
/// `None` for `_` or patterns with no plain binding.
fn pattern_var(pattern: &[Token]) -> Option<String> {
    pattern
        .iter()
        .rev()
        .find(|t| {
            t.kind == TokKind::Ident
                && !matches!(
                    t.text.as_str(),
                    "mut" | "ref" | "box" | "Ok" | "Err" | "Some" | "None" | "_"
                )
                && !t.text.chars().next().is_some_and(char::is_uppercase)
        })
        .map(|t| t.text.clone())
}

/// Truncates a guard's live range at an explicit `drop(var)` call.
fn truncate_at_drop(toks: &[Token], var: &str, from: usize, live_end: usize) -> usize {
    let mut i = from;
    while i + 3 <= live_end && i + 3 < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "drop"
            && toks[i + 1].text == "("
            && toks[i + 2].text == var
            && toks[i + 3].text == ")"
        {
            return i;
        }
        i += 1;
    }
    live_end
}

/// Line spans `[start, end]` of `#[cfg(test)] mod … { … }` blocks — the
/// scoping every rule shares for test exemptions.
pub(crate) fn test_mod_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `{` that opens the annotated item (skipping further
        // attributes and the item header), then brace-match.
        let mut j = i + 7;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text == ";" {
            i = j;
            continue;
        }
        let start = toks[i].line;
        let mut depth = 0i32;
        let mut end = toks[j].line;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = toks[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start, end));
        i = j + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes(src: &str) -> ScopeAnalysis {
        analyze(&lex(src))
    }

    #[test]
    fn functions_and_bodies_are_spanned() {
        let s = scopes("fn a() { x(); }\nimpl T { fn b(&self) -> u8 { 0 } }\ntrait Q { fn c(); }");
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for f in &s.functions {
            assert!(f.body.0 <= f.body.1);
        }
    }

    #[test]
    fn guard_binding_spans_to_block_end() {
        let s = scopes("fn f(m: &Mutex<u8>) {\n let g = m.lock().unwrap();\n use_it(&g);\n}\n");
        assert_eq!(s.guards.len(), 1);
        let g = &s.guards[0];
        assert_eq!(g.var, "g");
        assert_eq!(g.lock, "m");
        assert_eq!(g.line, 2);
    }

    #[test]
    fn match_wrapped_and_if_let_bindings_are_found() {
        let s = scopes(
            "fn f() {\n let guard = match rx.lock() { Ok(g) => g, Err(_) => return };\n\
             if let Ok(mut slot) = cell.lock() { *slot = None; }\n}\n",
        );
        let vars: Vec<&str> = s.guards.iter().map(|g| g.var.as_str()).collect();
        assert_eq!(vars, vec!["guard", "slot"]);
        assert_eq!(s.guards[0].lock, "rx");
        assert_eq!(s.guards[1].lock, "cell");
    }

    #[test]
    fn empty_parens_distinguish_locks_from_io() {
        let s = scopes(
            "fn f() { let a = rw.read().unwrap(); let n = sock.read(&mut buf).unwrap(); }\n",
        );
        assert_eq!(s.guards.len(), 1);
        assert_eq!(s.guards[0].lock, "rw");
        assert_eq!(s.acquisitions.len(), 1);
    }

    #[test]
    fn drop_truncates_liveness() {
        let s = scopes("fn f() {\n let g = m.lock().unwrap();\n drop(g);\n blocking();\n}\n");
        let g = &s.guards[0];
        let drop_tok = s.guards[0].live.1;
        // The live range ends at the `drop` keyword, before `blocking`.
        assert!(g.live.0 < drop_tok);
        let lexed = lex("fn f() {\n let g = m.lock().unwrap();\n drop(g);\n blocking();\n}\n");
        assert_eq!(lexed.tokens[drop_tok].text, "drop");
    }

    #[test]
    fn underscore_bindings_are_not_guards() {
        let s = scopes("fn f() { let _ = m.lock(); }\n");
        assert!(s.guards.is_empty());
        assert_eq!(s.acquisitions.len(), 1);
    }

    #[test]
    fn loops_are_spanned_and_nested_lookup_works() {
        let src = "fn f() { for i in 0..n { while go { work(); } } }\nimpl Display for T {}\n";
        let s = scopes(src);
        assert_eq!(s.loops.len(), 2, "impl-for is not a loop: {:?}", s.loops);
        let inner = &s.loops[1];
        let enclosing = s.loops_containing(inner.body.0 + 1);
        assert_eq!(enclosing.len(), 2);
    }

    #[test]
    fn unbalanced_input_yields_clamped_spans() {
        for src in [
            "fn f() { let g = m.lock();",
            "}}}{{{",
            "fn {",
            "let g = m.lock(",
        ] {
            let s = scopes(src);
            for f in &s.functions {
                assert!(f.body.0 <= f.body.1);
            }
            for g in &s.guards {
                assert!(g.live.0 <= g.live.1);
            }
            for l in &s.loops {
                assert!(l.body.0 <= l.body.1);
            }
        }
    }

    #[test]
    fn shard_call_receivers_resolve_to_the_method_name() {
        let s = scopes("fn f() { let g = self.shard(key).lock().unwrap(); }\n");
        assert_eq!(s.guards[0].lock, "shard");
    }
}

//! R9 `lock-order-inversion`: the whole-workspace lock-acquisition graph.
//!
//! Every file contributes edges — one per "guard for lock `first` still
//! live when lock `second` is acquired" pair ([`crate::flow::lock_edges`]).
//! Locks are identified by name (the receiver ident before `.lock()` /
//! `.read()` / `.write()`), so `self.slow.lock()` in two files is one
//! node `slow`. That is deliberately coarse: same-named locks on
//! different types collapse into one node, which can over-report but
//! never under-report — and a pragma documents any accepted collision.
//!
//! A finding is an *edge that participates in a cycle*: `a → b` is
//! reported when some path `b → … → a` also exists anywhere in the
//! workspace. Both sites are named so the fix (pick one order) is
//! actionable from either end. Self-edges never arise (`lock_edges`
//! drops same-name pairs); re-entrant acquisition of one mutex is a
//! deadlock too, but not an *ordering* bug, and R8's scope-narrowing
//! pressure shrinks guard spans until it cannot hide.

use crate::diag::Diagnostic;
use crate::rules::RULE_IDS;
use std::collections::{BTreeMap, BTreeSet};

/// One nested acquisition: the guard for `first` was live when `second`
/// was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held first (outer).
    pub first: String,
    /// Lock acquired while `first` was held (inner).
    pub second: String,
    /// Line of the outer acquisition.
    pub first_line: u32,
    /// Line of the inner acquisition — the diagnostic site.
    pub second_line: u32,
}

/// Everything the workspace pass needs from one file; cached verbatim by
/// incremental mode so skipped files still feed the graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSummary {
    /// Lock-nesting edges contributed by this file.
    pub edges: Vec<LockEdge>,
    /// `allow(lock-order-inversion)` pragmas, resolved at workspace level.
    pub deferred_allows: Vec<crate::pragma::DeferredAllow>,
}

/// Runs cycle detection over every file's edges and reports each edge
/// that sits on a cycle, at its inner-acquisition site. Pragmas are
/// applied by the caller ([`crate::finish`]), not here.
pub fn check(files: &[(String, FileSummary)]) -> Vec<Diagnostic> {
    // adjacency: lock -> set of locks acquired under it
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, summary) in files {
        for e in &summary.edges {
            adj.entry(&e.first).or_default().insert(&e.second);
        }
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    // A representative counter-site for the message: some edge out of
    // `b` that lies on a `b -> … -> a` path. With a two-lock inversion
    // this is exactly the opposite-order acquisition.
    let counter_site = |a: &str, b: &str| -> Option<(String, u32)> {
        for (file, summary) in files {
            for e in &summary.edges {
                if e.first == b && reachable(&e.second, a) {
                    return Some((file.clone(), e.second_line));
                }
            }
        }
        None
    };
    let mut out = Vec::new();
    for (file, summary) in files {
        for e in &summary.edges {
            if !reachable(&e.second, &e.first) {
                continue;
            }
            let via = counter_site(&e.first, &e.second)
                .map(|(f, l)| format!("{f}:{l}"))
                .unwrap_or_else(|| "elsewhere in the workspace".to_owned());
            out.push(Diagnostic {
                file: file.clone(),
                line: e.second_line,
                col: 1,
                rule: RULE_IDS[8],
                message: format!(
                    "lock `{}` acquired while `{}` is held (held since line {}), but the \
                     opposite order is taken at {} — pick one nesting order workspace-wide \
                     or these sites can deadlock",
                    e.second, e.first, e.first_line, via
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(first: &str, second: &str, l1: u32, l2: u32) -> LockEdge {
        LockEdge {
            first: first.to_owned(),
            second: second.to_owned(),
            first_line: l1,
            second_line: l2,
        }
    }

    fn file(name: &str, edges: Vec<LockEdge>) -> (String, FileSummary) {
        (
            name.to_owned(),
            FileSummary {
                edges,
                deferred_allows: Vec::new(),
            },
        )
    }

    #[test]
    fn consistent_order_is_clean() {
        let files = vec![
            file("a.rs", vec![edge("slow", "stats", 3, 4)]),
            file("b.rs", vec![edge("slow", "stats", 10, 11)]),
            file("c.rs", vec![edge("stats", "log", 7, 8)]),
        ];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn two_file_inversion_reports_both_sites() {
        let files = vec![
            file("a.rs", vec![edge("slow", "stats", 3, 4)]),
            file("b.rs", vec![edge("stats", "slow", 10, 11)]),
        ];
        let d = check(&files);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!((d[0].file.as_str(), d[0].line), ("a.rs", 4));
        assert!(d[0].message.contains("b.rs:11"), "{}", d[0].message);
        assert_eq!((d[1].file.as_str(), d[1].line), ("b.rs", 11));
        assert!(d[1].message.contains("a.rs:4"), "{}", d[1].message);
    }

    #[test]
    fn three_lock_cycle_reports_every_edge() {
        let files = vec![
            file("a.rs", vec![edge("x", "y", 1, 2)]),
            file("b.rs", vec![edge("y", "z", 1, 2)]),
            file("c.rs", vec![edge("z", "x", 1, 2)]),
        ];
        assert_eq!(check(&files).len(), 3);
    }

    #[test]
    fn diamond_without_cycle_is_clean() {
        let files = vec![file(
            "a.rs",
            vec![
                edge("root", "left", 1, 2),
                edge("root", "right", 3, 4),
                edge("left", "leaf", 5, 6),
                edge("right", "leaf", 7, 8),
            ],
        )];
        assert!(check(&files).is_empty());
    }
}

//! A small, comment- and string-aware Rust lexer.
//!
//! The linter does not need a full parser: every rule works on a flat token
//! stream plus the list of line comments (for suppression pragmas). The
//! lexer's one job is to be *accurate about what is code*: text inside
//! comments, string literals, char literals and doc examples must never
//! produce tokens, and every token must carry its 1-based line and column.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`) — kept distinct so char-literal handling stays honest.
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String, raw-string, byte-string or char literal (contents opaque).
    Literal,
    /// Any punctuation. Multi-character operators the rules match on
    /// (`==`, `!=`, `->`, `::`) are single tokens; everything else is one
    /// character per token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// One `//` line comment (block comments never carry pragmas).
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Comment body with the leading slashes (and any `/` / `!` doc marker)
    /// stripped, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in order.
    pub tokens: Vec<Token>,
    /// All `//` comments, in order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// degrades to single-character punct tokens rather than an error, which is
/// the right trade for a linter that must not crash on the tree it guards.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        let col = cur.col;

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            // Strip one doc marker (`/` or `!`) so `/// text` and `//! text`
            // read the same as `// text`.
            if matches!(cur.peek(0), Some('/') | Some('!')) {
                cur.bump();
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }

        // Identifiers — including the raw/byte string prefixes r", r#",
        // b", br", rb".
        if is_ident_start(c) {
            let mut ident = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            let next = cur.peek(0);
            let is_raw_prefix = matches!(ident.as_str(), "r" | "br" | "rb") && {
                next == Some('#') || next == Some('"')
            };
            let is_byte_prefix = ident == "b" && next == Some('"');
            if is_raw_prefix && consume_raw_string(&mut cur) {
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
            if is_byte_prefix {
                cur.bump(); // opening quote
                consume_quoted(&mut cur, '"');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (text, kind) = consume_number(&mut cur);
            out.tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            cur.bump();
            consume_quoted(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            cur.bump();
            match cur.peek(0) {
                Some('\\') => {
                    // Escaped char literal.
                    consume_quoted(&mut cur, '\'');
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                Some(ch) if is_ident_start(ch) && cur.peek(1) != Some('\'') => {
                    // Lifetime: 'a, 'static, '_.
                    let mut text = String::from("'");
                    while let Some(k) = cur.peek(0) {
                        if is_ident_continue(k) {
                            text.push(k);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                }
                Some(_) => {
                    // Plain char literal like 'x' or ','.
                    cur.bump();
                    if cur.peek(0) == Some('\'') {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                None => {}
            }
            continue;
        }

        // Punctuation; combine the few multi-char operators rules match on.
        let two: Option<&str> = match (c, cur.peek(1)) {
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            (':', Some(':')) => Some("::"),
            ('.', Some('.')) => Some(".."),
            _ => None,
        };
        if let Some(op) = two {
            cur.bump();
            cur.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: op.to_owned(),
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Consumes up to and including the closing `quote`, honoring backslash
/// escapes. The cursor sits just past the opening quote on entry.
fn consume_quoted(cur: &mut Cursor<'_>, quote: char) {
    while let Some(ch) = cur.bump() {
        if ch == '\\' {
            cur.bump();
        } else if ch == quote {
            break;
        }
    }
}

/// Consumes a raw string (`#`* `"` … `"` `#`*). The cursor sits on the
/// first `#` or the opening quote. Returns false if this is not actually a
/// raw string (e.g. `r#foo` raw identifiers), leaving unknown input to be
/// lexed as punctuation.
fn consume_raw_string(cur: &mut Cursor<'_>) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hashes.
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return true;
        }
    }
    true
}

/// Consumes a numeric literal, classifying it as int or float.
fn consume_number(cur: &mut Cursor<'_>) -> (String, TokKind) {
    let mut text = String::new();
    let mut kind = TokKind::Int;

    // Hex/octal/binary stay ints.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_hexdigit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return (text, kind);
    }

    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_digit() || ch == '_' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part — but not `..` ranges and not method calls `1.max(2)`.
    if cur.peek(0) == Some('.') {
        if let Some(after) = cur.peek(1) {
            if after.is_ascii_digit() {
                kind = TokKind::Float;
                text.push('.');
                cur.bump();
                while let Some(ch) = cur.peek(0) {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            } else if !is_ident_start(after) && after != '.' {
                // Trailing-dot float like `1.`.
                kind = TokKind::Float;
                text.push('.');
                cur.bump();
            }
        } else {
            kind = TokKind::Float;
            text.push('.');
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
            kind = TokKind::Float;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let mut suffix = String::new();
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            suffix.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        kind = TokKind::Float;
    }
    text.push_str(&suffix);
    (text, kind)
}

/// Parses the numeric value of an int/float token's text (underscores and
/// type suffixes stripped). Returns `None` for hex/octal/binary forms.
pub fn literal_value(text: &str) -> Option<f64> {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return None;
    }
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let cleaned = cleaned
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("i64")
        .trim_end_matches("i32")
        .trim_end_matches("usize");
    cleaned.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() here is fine\n/* and .expect( too */ let y;");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "expect"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn doc_comments_hide_code_examples() {
        let src = "/// let t = x.unwrap();\nfn real() {}\n";
        let l = lex(src);
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.tokens[0].text, "fn");
        assert_eq!(l.tokens[0].line, 2);
    }

    #[test]
    fn strings_are_opaque() {
        let l = lex("let s = \"a.unwrap() == 1.5\"; let r = r\"println!(x)\";");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "println"));
    }

    #[test]
    fn hashed_raw_strings_are_opaque() {
        let l = lex("let r = r#\"quote \" inside .expect( \"#; x.unwrap();");
        assert!(l.tokens.iter().all(|t| t.text != "expect"));
        assert!(l.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let l = lex(r#"let s = "he said \"hi\""; x.unwrap();"#);
        assert!(l.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_owned())));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn float_classification() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("1e3")[0].0, TokKind::Float);
        assert_eq!(kinds("1.0e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1f")[0].0, TokKind::Int);
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Int, "0".to_owned()));
        assert_eq!(toks[1], (TokKind::Punct, "..".to_owned()));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".to_owned()));
        assert_eq!(toks[1], (TokKind::Punct, ".".to_owned()));
        assert_eq!(toks[2], (TokKind::Ident, "max".to_owned()));
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a == b != c -> d :: e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "->", "::"]);
    }

    #[test]
    fn positions_are_line_accurate() {
        let l = lex("a\n  b\n\tc == 1.5\n");
        let b = l.tokens.iter().find(|t| t.text == "b").expect("b");
        assert_eq!((b.line, b.col), (2, 3));
        let eq = l.tokens.iter().find(|t| t.text == "==").expect("==");
        assert_eq!(eq.line, 3);
    }

    #[test]
    fn literal_values_parse() {
        assert_eq!(literal_value("1_000.5"), Some(1000.5));
        assert_eq!(literal_value("85.0f64"), Some(85.0));
        assert_eq!(literal_value("1e2"), Some(100.0));
        assert_eq!(literal_value("0x1f"), None);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(l.tokens[0].text, "fn");
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-lint
//!
//! An offline, std-only static analyzer for the relia workspace's
//! physical-unit and reliability invariants. The paper's model is a
//! minefield of silently confusable scalars — kelvin vs. celsius, stress
//! seconds vs. wall seconds, duty cycles vs. RAS ratios — and the serving
//! tier layered on top adds the concurrency hazards (held guards, lock
//! ordering, unpollable loops, leaking gauges) that corrupt results
//! *operationally* instead. These rules turn both classes into build
//! failures:
//!
//! * **R1 `unit-leak`** — unit-named `pub fn` parameters or struct fields
//!   (`temp*`, `t_active`, `t_standby`, `*_k`, `duration`, `period`,
//!   `lifetime`) typed as bare `f64` instead of `Kelvin`/`Seconds`.
//! * **R2 `unwrap-in-lib`** — `.unwrap()`/`.expect(` in library code
//!   (binaries, benches and `#[cfg(test)]` modules exempt).
//! * **R3 `float-eq`** — `==`/`!=` against a non-zero float literal.
//! * **R4 `print-in-lib`** — `println!`/`eprintln!` in library crates.
//! * **R5 `missing-forbid-unsafe`** — crate root without
//!   `#![forbid(unsafe_code)]`.
//! * **R6 `celsius-kelvin`** — a literal in (0, 150] wrapped directly in
//!   `Kelvin(...)`: 85 K is cryogenic, 85 °C is a die temperature.
//! * **R7 `blocking-in-handler`** — `thread::sleep` or unbounded
//!   `.read_to_end(` in request-handler library code (`crates/serve/src/`):
//!   a blocked handler pins a worker-pool slot and defeats the server's
//!   deadline and backpressure design.
//! * **R8 `guard-across-blocking`** — a live lock guard spans
//!   `thread::sleep`, socket/channel I/O, or a cold model evaluation
//!   ([`flow`]).
//! * **R9 `lock-order-inversion`** — two locks acquired in opposite
//!   nesting order anywhere in the workspace; both sites are reported
//!   ([`graph`]).
//! * **R10 `unpolled-loop`** — a handler/job loop evaluates the model
//!   without polling a `CancelToken`/`Deadline` ([`flow`]).
//! * **R11 `counter-leak`** — a metrics gauge incremented on an entry
//!   path with an early `return` before the decrement/handoff ([`flow`]).
//!
//! Violations are suppressed per line with
//! `// relia-lint: allow(rule-id)` — trailing on the offending line, or
//! standalone on the line above it. A pragma that suppresses nothing is
//! itself an error (`stale-allow`), so allows cannot outlive their reason.
//!
//! ## Pipeline
//!
//! ```text
//! lexer → scope tracker → per-file rules (R1–R8, R10, R11) ┐
//!                       → lock edges + deferred pragmas ───┴→ finish():
//!                                 workspace lock graph (R9) + pragma audit
//! ```
//!
//! Per-file analysis ([`analyze_source`]) is pure in the file's content
//! and classification, which is what makes `--incremental` ([`cache`])
//! and `--jobs N` (same results in discovery order, any worker count)
//! sound. Workspace rules run in [`finish`] over every file's
//! [`graph::FileSummary`] — recomputed on every run, cached or not.
//!
//! The analyzer is a hand-rolled lexer plus token-stream rules — no
//! rustc internals, no syn, no network — so it runs identically in the
//! offline container and in CI (`relia lint`, or
//! `cargo run -q -p relia-lint`).

pub mod cache;
pub mod diag;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scope;
pub mod walker;

use std::collections::BTreeMap;
use std::path::Path;

pub use diag::Diagnostic;
pub use rules::{FileKind, FileOpts, RULES, RULE_IDS};

/// Everything one file contributes: its own findings plus its inputs to
/// the workspace-level rules.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Per-file diagnostics, pragma-filtered and sorted.
    pub diags: Vec<Diagnostic>,
    /// Lock edges and deferred pragmas for the workspace pass.
    pub summary: graph::FileSummary,
}

/// Analyzes one in-memory source file: lex, scope-track, run every
/// per-file rule, apply pragmas. Pure in `(file, source, opts)`.
pub fn analyze_source(file: &str, source: &str, opts: &FileOpts) -> FileAnalysis {
    let lexed = lexer::lex(source);
    let scopes = scope::analyze(&lexed);
    let (mut pragmas, mut diags) = pragma::parse(file, &lexed);
    let mut violations = rules::check(file, &lexed, opts);
    violations.extend(flow::check(file, &lexed, &scopes, opts));
    let (kept, deferred_allows) = pragma::apply_deferring(file, &mut pragmas, violations);
    diags.extend(kept);
    diag::sort(&mut diags);
    FileAnalysis {
        diags,
        summary: graph::FileSummary {
            edges: flow::lock_edges(&lexed, &scopes, opts),
            deferred_allows,
        },
    }
}

/// Combines per-file analyses into the final report: concatenates file
/// diagnostics, runs the workspace lock graph (R9), applies deferred
/// `allow(lock-order-inversion)` pragmas, and reports the stale ones.
pub fn finish(files: Vec<(String, FileAnalysis)>) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut summaries: Vec<(String, graph::FileSummary)> = Vec::with_capacity(files.len());
    for (name, analysis) in files {
        diags.extend(analysis.diags);
        summaries.push((name, analysis.summary));
    }
    let r9 = graph::check(&summaries);
    for d in r9 {
        let allow = summaries
            .iter_mut()
            .find(|(name, _)| *name == d.file)
            .and_then(|(_, s)| {
                s.deferred_allows
                    .iter_mut()
                    .find(|a| a.target_line == d.line)
            });
        match allow {
            Some(a) => a.used = true,
            None => diags.push(d),
        }
    }
    for (name, s) in &summaries {
        for a in s.deferred_allows.iter().filter(|a| !a.used) {
            diags.push(Diagnostic {
                file: name.clone(),
                line: a.line,
                col: 1,
                rule: "stale-allow",
                message: format!(
                    "allow({}) suppresses nothing — remove the pragma or the fix that \
                     outlived it",
                    pragma::DEFERRED_RULE
                ),
            });
        }
    }
    diag::sort(&mut diags);
    diags
}

/// Lints a set of in-memory sources as one workspace — per-file rules
/// plus the cross-file lock graph. The unit the multi-file fixture tests
/// drive.
pub fn lint_sources(files: &[(&str, &str, FileOpts)]) -> Vec<Diagnostic> {
    finish(
        files
            .iter()
            .map(|(name, source, opts)| ((*name).to_owned(), analyze_source(name, source, opts)))
            .collect(),
    )
}

/// Lints one in-memory source file through the full pipeline (the
/// workspace pass sees a single file). This is the unit the fixture
/// self-tests drive.
pub fn lint_source(file: &str, source: &str, opts: &FileOpts) -> Vec<Diagnostic> {
    finish(vec![(file.to_owned(), analyze_source(file, source, opts))])
}

/// Options for a workspace lint run.
#[derive(Debug, Clone, Copy)]
pub struct WorkspaceOpts {
    /// Worker threads for per-file analysis; `<= 1` runs serially. Output
    /// is identical for every value.
    pub jobs: usize,
    /// Skip re-analyzing files whose content hash matches the committed
    /// `.lint-cache` manifest (their cached summaries still feed R9).
    pub incremental: bool,
    /// Rewrite `.lint-cache` from this run's clean files.
    pub write_cache: bool,
}

impl Default for WorkspaceOpts {
    fn default() -> Self {
        WorkspaceOpts {
            jobs: 1,
            incremental: false,
            write_cache: false,
        }
    }
}

/// Lints every workspace source file under `root`, returning the sorted
/// diagnostics.
///
/// # Errors
///
/// Returns an error string when the walk or a file read fails — an I/O
/// problem, not a lint finding.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    lint_workspace_opts(root, &WorkspaceOpts::default())
}

/// [`lint_workspace`] with explicit parallelism and incremental-cache
/// behavior.
///
/// # Errors
///
/// Returns an error string when the walk, a file read, the cache write,
/// or a lint worker fails.
pub fn lint_workspace_opts(root: &Path, opts: &WorkspaceOpts) -> Result<Vec<Diagnostic>, String> {
    let files = walker::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let cache_path = root.join(cache::CACHE_FILE);
    let cached = if opts.incremental {
        cache::load(&cache_path).unwrap_or_default()
    } else {
        BTreeMap::new()
    };

    let analyze_one = |f: &walker::SourceFile| -> Result<(FileAnalysis, u64), String> {
        let source = std::fs::read_to_string(&f.abs_path)
            .map_err(|e| format!("reading {}: {e}", f.abs_path.display()))?;
        let hash = cache::fnv1a(source.as_bytes());
        if let Some(entry) = cached.get(&f.rel_path) {
            if entry.hash == hash {
                // Cached files were clean; only their workspace inputs
                // survive to this run.
                return Ok((
                    FileAnalysis {
                        diags: Vec::new(),
                        summary: entry.summary.clone(),
                    },
                    hash,
                ));
            }
        }
        Ok((analyze_source(&f.rel_path, &source, &f.opts), hash))
    };

    // `run_ordered` returns outcomes in job (= discovery) order for any
    // worker count, which keeps `--jobs N` output byte-identical to a
    // serial run.
    let results: Vec<Result<(FileAnalysis, u64), String>> = if opts.jobs <= 1 {
        files.iter().map(analyze_one).collect()
    } else {
        relia_jobs::pool::run_ordered(&files, opts.jobs, |_, f| analyze_one(f))
            .into_iter()
            .map(|o| match o {
                relia_jobs::pool::JobOutcome::Completed(r) => r,
                _ => Err("lint worker failed".to_owned()),
            })
            .collect()
    };

    let mut analyses = Vec::with_capacity(files.len());
    for (f, r) in files.iter().zip(results) {
        let (analysis, hash) = r?;
        analyses.push((f.rel_path.clone(), analysis, hash));
    }

    if opts.write_cache {
        let entries: BTreeMap<String, cache::CacheEntry> = analyses
            .iter()
            .filter(|(_, a, _)| a.diags.is_empty())
            .map(|(name, a, hash)| {
                (
                    name.clone(),
                    cache::CacheEntry {
                        hash: *hash,
                        summary: a.summary.clone(),
                    },
                )
            })
            .collect();
        cache::save(&cache_path, &entries)
            .map_err(|e| format!("writing {}: {e}", cache_path.display()))?;
    }

    Ok(finish(
        analyses.into_iter().map(|(name, a, _)| (name, a)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileOpts = FileOpts {
        kind: FileKind::Library,
        crate_root: false,
        handler: false,
        job: false,
    };

    #[test]
    fn lint_source_ties_rules_to_pragmas() {
        let src = "pub fn f() {\n    x.unwrap(); // relia-lint: allow(unwrap-in-lib)\n    y.unwrap();\n}\n";
        let diags = lint_source("f.rs", src, &LIB);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn lint_sources_catches_cross_file_inversion() {
        let a = "pub fn f(s: &S) {\n let g = s.alpha.lock();\n let h = s.beta.lock();\n}\n";
        let b = "pub fn g(s: &S) {\n let h = s.beta.lock();\n let g = s.alpha.lock();\n}\n";
        let diags = lint_sources(&[("a.rs", a, LIB), ("b.rs", b, LIB)]);
        let r9: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "lock-order-inversion")
            .collect();
        assert_eq!(r9.len(), 2, "{diags:?}");
        assert_eq!((r9[0].file.as_str(), r9[0].line), ("a.rs", 3));
        assert_eq!((r9[1].file.as_str(), r9[1].line), ("b.rs", 3));
        assert!(r9[0].message.contains("b.rs:3"), "{}", r9[0].message);
    }

    #[test]
    fn deferred_allows_suppress_r9_and_go_stale_without_it() {
        let a = "pub fn f(s: &S) {\n let g = s.alpha.lock();\n let h = s.beta.lock(); // relia-lint: allow(lock-order-inversion)\n}\n";
        let b = "pub fn g(s: &S) {\n let h = s.beta.lock();\n let g = s.alpha.lock(); // relia-lint: allow(lock-order-inversion)\n}\n";
        let diags = lint_sources(&[("a.rs", a, LIB), ("b.rs", b, LIB)]);
        assert!(diags.is_empty(), "{diags:?}");
        // With no inversion anywhere, the same pragma is stale.
        let clean = "pub fn f(s: &S) {\n let g = s.alpha.lock(); // relia-lint: allow(lock-order-inversion)\n}\n";
        let diags = lint_sources(&[("c.rs", clean, LIB)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "stale-allow");
    }

    #[test]
    fn the_workspace_is_clean() {
        // The acceptance bar: `relia lint` reports zero violations on the
        // tree this crate ships in.
        let root = walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let diags = lint_workspace(&root).expect("workspace lints");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags
                .iter()
                .map(Diagnostic::render_text)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn parallel_and_incremental_runs_match_serial() {
        let root = walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let serial = lint_workspace(&root).expect("serial");
        let parallel = lint_workspace_opts(
            &root,
            &WorkspaceOpts {
                jobs: 8,
                ..WorkspaceOpts::default()
            },
        )
        .expect("parallel");
        assert_eq!(serial, parallel);
        let incremental = lint_workspace_opts(
            &root,
            &WorkspaceOpts {
                incremental: true,
                ..WorkspaceOpts::default()
            },
        )
        .expect("incremental");
        assert_eq!(serial, incremental);
    }
}

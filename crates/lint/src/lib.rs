#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-lint
//!
//! An offline, std-only static analyzer for the relia workspace's
//! physical-unit and reliability invariants. The paper's model is a
//! minefield of silently confusable scalars — kelvin vs. celsius, stress
//! seconds vs. wall seconds, duty cycles vs. RAS ratios — and a single
//! mixed-up unit reproduces the figures *plausibly but wrongly*. These
//! rules turn that class of bug into a build failure:
//!
//! * **R1 `unit-leak`** — unit-named `pub fn` parameters or struct fields
//!   (`temp*`, `t_active`, `t_standby`, `*_k`, `duration`, `period`,
//!   `lifetime`) typed as bare `f64` instead of `Kelvin`/`Seconds`.
//! * **R2 `unwrap-in-lib`** — `.unwrap()`/`.expect(` in library code
//!   (binaries, benches and `#[cfg(test)]` modules exempt).
//! * **R3 `float-eq`** — `==`/`!=` against a non-zero float literal.
//! * **R4 `print-in-lib`** — `println!`/`eprintln!` in library crates.
//! * **R5 `missing-forbid-unsafe`** — crate root without
//!   `#![forbid(unsafe_code)]`.
//! * **R6 `celsius-kelvin`** — a literal in (0, 150] wrapped directly in
//!   `Kelvin(...)`: 85 K is cryogenic, 85 °C is a die temperature.
//! * **R7 `blocking-in-handler`** — `thread::sleep` or unbounded
//!   `.read_to_end(` in request-handler library code (`crates/serve/src/`):
//!   a blocked handler pins a worker-pool slot and defeats the server's
//!   deadline and backpressure design.
//!
//! Violations are suppressed per line with
//! `// relia-lint: allow(rule-id)` — trailing on the offending line, or
//! standalone on the line above it. A pragma that suppresses nothing is
//! itself an error (`stale-allow`), so allows cannot outlive their reason.
//!
//! The analyzer is a hand-rolled lexer plus token-stream rules — no
//! rustc internals, no syn, no network — so it runs identically in the
//! offline container and in CI (`relia lint`, or
//! `cargo run -q -p relia-lint`).

pub mod diag;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walker;

use std::path::Path;

pub use diag::Diagnostic;
pub use rules::{FileKind, FileOpts, RULE_IDS};

/// Lints one in-memory source file: lex, run every rule, apply pragmas.
/// This is the unit the fixture self-tests drive.
pub fn lint_source(file: &str, source: &str, opts: &FileOpts) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let (mut pragmas, mut diags) = pragma::parse(file, &lexed);
    let violations = rules::check(file, &lexed, opts);
    diags.extend(pragma::apply(file, &mut pragmas, violations));
    diag::sort(&mut diags);
    diags
}

/// Lints every workspace source file under `root`, returning the sorted
/// diagnostics.
///
/// # Errors
///
/// Returns an error string when the walk or a file read fails — an I/O
/// problem, not a lint finding.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = walker::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    for f in &files {
        let source = std::fs::read_to_string(&f.abs_path)
            .map_err(|e| format!("reading {}: {e}", f.abs_path.display()))?;
        diags.extend(lint_source(&f.rel_path, &source, &f.opts));
    }
    diag::sort(&mut diags);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_ties_rules_to_pragmas() {
        let src = "pub fn f() {\n    x.unwrap(); // relia-lint: allow(unwrap-in-lib)\n    y.unwrap();\n}\n";
        let opts = FileOpts {
            kind: FileKind::Library,
            crate_root: false,
            handler: false,
        };
        let diags = lint_source("f.rs", src, &opts);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn the_workspace_is_clean() {
        // The acceptance bar: `relia lint` reports zero violations on the
        // tree this crate ships in.
        let root = walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let diags = lint_workspace(&root).expect("workspace lints");
        assert!(
            diags.is_empty(),
            "workspace has lint violations:\n{}",
            diags
                .iter()
                .map(Diagnostic::render_text)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

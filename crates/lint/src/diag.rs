//! Diagnostics: the linter's output records and their two render formats.

use std::fmt;

/// One finding: a rule violation (or a meta problem with a pragma).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, as walked (workspace-relative when the
    /// walk root is the workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule identifier (`unit-leak`, `unwrap-in-lib`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The rustc-style one-line text form:
    /// `path:line:col: rule-id: message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// One JSON object (for `--format json` JSONL output).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.col,
            self.rule,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sorts diagnostics into the stable report order: file, then line, then
/// column, then rule id.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "float-eq",
            message: "float `==` comparison".into(),
        }
    }

    #[test]
    fn text_form_is_rustc_style() {
        assert_eq!(
            d().render_text(),
            "crates/x/src/lib.rs:3:9: float-eq: float `==` comparison"
        );
    }

    #[test]
    fn json_form_escapes() {
        let mut diag = d();
        diag.message = "bad \"quote\"\n".into();
        let json = diag.render_json();
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn sort_orders_by_file_line_col() {
        let mut v = vec![
            Diagnostic { line: 9, ..d() },
            Diagnostic {
                file: "a.rs".into(),
                ..d()
            },
            d(),
        ];
        sort(&mut v);
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 9);
    }
}

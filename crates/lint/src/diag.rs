//! Diagnostics: the linter's output records and their render formats —
//! rustc-style text, JSONL, and SARIF 2.1.0 for editor/CI ingestion.

use std::fmt;

/// One finding: a rule violation (or a meta problem with a pragma).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, as walked (workspace-relative when the
    /// walk root is the workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule identifier (`unit-leak`, `unwrap-in-lib`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The rustc-style one-line text form:
    /// `path:line:col: rule-id: message`.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// One JSON object (for `--format json` JSONL output).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.col,
            self.rule,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Renders a full report as a single SARIF 2.1.0 document. The driver
/// advertises every registered rule (plus the two pragma meta rules) so
/// viewers can resolve `ruleId` references; each diagnostic becomes one
/// `error`-level result with a physical location.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut rules = String::new();
    let meta = [
        ("stale-allow", "allow pragma suppresses nothing"),
        ("bad-pragma", "malformed or unknown-rule allow pragma"),
    ];
    let all = crate::rules::RULES
        .iter()
        .map(|r| (r.id, r.summary))
        .chain(meta);
    for (i, (id, summary)) in all.enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            escape_json(id),
            escape_json(summary)
        ));
    }
    let mut results = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            escape_json(d.rule),
            escape_json(&d.message),
            escape_json(&d.file),
            d.line,
            d.col
        ));
    }
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"relia-lint\",\"rules\":[{rules}]}}}},\"results\":[{results}]}}]}}"
    )
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sorts diagnostics into the stable report order: file, then line, then
/// column, then rule id.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "float-eq",
            message: "float `==` comparison".into(),
        }
    }

    #[test]
    fn text_form_is_rustc_style() {
        assert_eq!(
            d().render_text(),
            "crates/x/src/lib.rs:3:9: float-eq: float `==` comparison"
        );
    }

    #[test]
    fn json_form_escapes() {
        let mut diag = d();
        diag.message = "bad \"quote\"\n".into();
        let json = diag.render_json();
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn sarif_form_names_driver_rules_and_locations() {
        let doc = render_sarif(&[d()]);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"name\":\"relia-lint\""));
        assert!(doc.contains("\"ruleId\":\"float-eq\""));
        assert!(doc.contains("\"id\":\"lock-order-inversion\""));
        assert!(doc.contains("\"startLine\":3"));
        assert!(doc.contains("\"startColumn\":9"));
        // An empty report is still a valid document.
        assert!(render_sarif(&[]).contains("\"results\":[]"));
    }

    #[test]
    fn sort_orders_by_file_line_col() {
        let mut v = vec![
            Diagnostic { line: 9, ..d() },
            Diagnostic {
                file: "a.rs".into(),
                ..d()
            },
            d(),
        ];
        sort(&mut v);
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 9);
    }
}

//! Inline suppression pragmas.
//!
//! A violation is silenced by a line comment of the form
//!
//! ```text
//! // relia-lint: allow(rule-id)
//! // relia-lint: allow(rule-id, other-rule)
//! ```
//!
//! placed either on the offending line (trailing comment, which covers
//! only that line) or alone on the line directly above it (which covers
//! only the next line). Every pragma must suppress at least one violation;
//! a pragma that suppresses nothing is itself reported (`stale-allow`), so
//! suppressions cannot outlive the code they excuse. Rule ids accept a
//! short `R<n>` alias for every registered rule (see
//! [`RULES`](crate::rules::RULES)).
//!
//! One rule needs special handling: R9 `lock-order-inversion` is decided
//! by the *workspace* lock graph, after every file has been analyzed. An
//! `allow(lock-order-inversion)` pragma therefore cannot be judged
//! used-or-stale inside [`apply_deferring`]; it is returned as a
//! [`DeferredAllow`] and resolved by [`crate::finish`] once the graph has
//! spoken.

use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::rules::rule_by_name;

/// The one rule whose pragmas are resolved at workspace level.
pub const DEFERRED_RULE: &str = "lock-order-inversion";

/// An `allow(lock-order-inversion)` pragma awaiting the workspace pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeferredAllow {
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// The single line the pragma covers.
    pub target_line: u32,
    /// True when the pragma already silenced a per-file violation (it
    /// named other rules too) — it can no longer be reported stale.
    pub used: bool,
}

/// One parsed `allow` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules this pragma silences (canonical ids).
    pub rules: Vec<&'static str>,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// The single line this pragma covers: its own line for a trailing
    /// comment, the next line for a standalone comment.
    pub target_line: u32,
    /// True once the pragma has silenced at least one violation.
    pub used: bool,
}

const PREFIX: &str = "relia-lint:";

/// Extracts pragmas from a file's comments. Malformed pragmas (bad syntax,
/// unknown rule names) produce diagnostics immediately — a suppression that
/// silently fails to parse would be worse than a violation.
pub fn parse(file: &str, lexed: &Lexed) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix(PREFIX) else {
            continue;
        };
        let rest = rest.trim();
        let inner = rest
            .strip_prefix("allow(")
            .and_then(|s| s.strip_suffix(')'));
        let Some(inner) = inner else {
            diags.push(Diagnostic {
                file: file.to_owned(),
                line: c.line,
                col: 1,
                rule: "bad-pragma",
                message: format!(
                    "malformed pragma {text:?}: expected `relia-lint: allow(rule-id, ...)`"
                ),
            });
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in inner.split(',') {
            let name = name.trim();
            match rule_by_name(name) {
                Some(id) => rules.push(id),
                None => {
                    diags.push(Diagnostic {
                        file: file.to_owned(),
                        line: c.line,
                        col: 1,
                        rule: "bad-pragma",
                        message: format!("unknown rule {name:?} in allow pragma"),
                    });
                    ok = false;
                }
            }
        }
        if ok && !rules.is_empty() {
            let trailing = lexed.tokens.iter().any(|t| t.line == c.line);
            pragmas.push(Pragma {
                rules,
                line: c.line,
                target_line: if trailing { c.line } else { c.line + 1 },
                used: false,
            });
        }
    }
    (pragmas, diags)
}

/// Applies pragmas to raw violations: a violation on the pragma's target
/// line, for a rule the pragma names, is dropped and the pragma marked
/// used. Unused pragmas then become `stale-allow` diagnostics.
///
/// Workspace-decided rules are the exception: pragmas naming
/// [`DEFERRED_RULE`] come back as [`DeferredAllow`]s instead of being
/// judged stale here.
pub fn apply_deferring(
    file: &str,
    pragmas: &mut [Pragma],
    violations: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<DeferredAllow>) {
    let mut out = Vec::new();
    for v in violations {
        let mut suppressed = false;
        for p in pragmas.iter_mut() {
            if v.line == p.target_line && p.rules.contains(&v.rule) {
                p.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }
    let mut deferred = Vec::new();
    for p in pragmas.iter() {
        if p.rules.contains(&DEFERRED_RULE) {
            deferred.push(DeferredAllow {
                line: p.line,
                target_line: p.target_line,
                used: p.used,
            });
            continue;
        }
        if !p.used {
            out.push(Diagnostic {
                file: file.to_owned(),
                line: p.line,
                col: 1,
                rule: "stale-allow",
                message: format!(
                    "allow({}) suppresses nothing — remove the pragma or the fix that outlived it",
                    p.rules.join(", ")
                ),
            });
        }
    }
    (out, deferred)
}

/// [`apply_deferring`] with the workspace pass collapsed away: a deferred
/// pragma that silenced nothing per-file is reported stale immediately.
/// Single-file convenience for tests and `lint_source`-without-workspace
/// callers.
pub fn apply(file: &str, pragmas: &mut [Pragma], violations: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let (mut out, deferred) = apply_deferring(file, pragmas, violations);
    for d in deferred.iter().filter(|d| !d.used) {
        out.push(Diagnostic {
            file: file.to_owned(),
            line: d.line,
            col: 1,
            rule: "stale-allow",
            message: format!(
                "allow({DEFERRED_RULE}) suppresses nothing — remove the pragma or the fix \
                 that outlived it"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diag(line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: "f.rs".into(),
            line,
            col: 1,
            rule,
            message: "x".into(),
        }
    }

    #[test]
    fn parses_single_and_multi_rule_pragmas() {
        let lexed = lex("// relia-lint: allow(float-eq)\n// relia-lint: allow(R2, unit-leak)\n");
        let (pragmas, diags) = parse("f.rs", &lexed);
        assert!(diags.is_empty());
        assert_eq!(pragmas.len(), 2);
        assert_eq!(pragmas[0].rules, vec!["float-eq"]);
        assert_eq!(pragmas[1].rules, vec!["unwrap-in-lib", "unit-leak"]);
    }

    #[test]
    fn rejects_malformed_and_unknown() {
        let lexed = lex("// relia-lint: allow float-eq\n// relia-lint: allow(no-such-rule)\n");
        let (pragmas, diags) = parse("f.rs", &lexed);
        assert!(pragmas.is_empty());
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "bad-pragma"));
    }

    #[test]
    fn standalone_pragma_covers_only_the_next_line() {
        let lexed = lex("// relia-lint: allow(float-eq)\n");
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let kept = apply(
            "f.rs",
            &mut pragmas,
            vec![
                diag(1, "float-eq"),
                diag(2, "float-eq"),
                diag(3, "float-eq"),
            ],
        );
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|d| d.line != 2));
    }

    #[test]
    fn trailing_pragma_covers_only_its_own_line() {
        let lexed = lex("let x = 1.5; // relia-lint: allow(float-eq)\nlet y = 2.5;\n");
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let kept = apply(
            "f.rs",
            &mut pragmas,
            vec![diag(1, "float-eq"), diag(2, "float-eq")],
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let lexed = lex("// relia-lint: allow(unit-leak)\n");
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let kept = apply("f.rs", &mut pragmas, vec![diag(2, "float-eq")]);
        // The violation survives and the pragma is reported stale.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|d| d.rule == "float-eq"));
        assert!(kept.iter().any(|d| d.rule == "stale-allow"));
    }

    #[test]
    fn lock_order_pragmas_defer_to_the_workspace_pass() {
        let lexed = lex("// relia-lint: allow(lock-order-inversion)\n");
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let (kept, deferred) = apply_deferring("f.rs", &mut pragmas, Vec::new());
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(deferred.len(), 1);
        assert_eq!(deferred[0].target_line, 2);
        assert!(!deferred[0].used);
        // The non-deferring wrapper restores the strict judgment.
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let kept = apply("f.rs", &mut pragmas, Vec::new());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "stale-allow");
    }

    #[test]
    fn unused_pragma_is_reported() {
        let lexed = lex("// relia-lint: allow(unwrap-in-lib)\n");
        let (mut pragmas, _) = parse("f.rs", &lexed);
        let kept = apply("f.rs", &mut pragmas, Vec::new());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "stale-allow");
    }
}

//! Property-based hardening of the lexer + scope tracker.
//!
//! The linter walks every source file in the workspace, including ones a
//! developer is mid-edit on (incremental runs) — so the bar is: arbitrary
//! bytes, valid UTF-8 or not, never panic any stage of the pipeline, and
//! the scope tracker's invariants (spans inside the token stream, starts
//! before ends) hold even on unbalanced garbage. Deterministic unit tests
//! in `src/scope.rs` pin the exact semantics; these tests pin totality.

#![allow(clippy::unwrap_used)]

use proptest::collection::vec;
use proptest::prelude::*;
use relia_lint::{analyze_source, lexer, scope, FileKind, FileOpts};

const LIB: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: false,
    handler: true,
    job: true,
};

/// Asserts every span invariant the rules rely on, then runs the full
/// per-file pipeline (which must also be total).
fn well_formed(src: &str) {
    let lexed = lexer::lex(src);
    let scopes = scope::analyze(&lexed);
    let n = lexed.tokens.len();
    let in_range = |span: (usize, usize)| span.0 <= span.1 && (n == 0 || span.1 < n);
    for f in &scopes.functions {
        assert!(in_range(f.body), "fn body {:?} of {n} tokens", f.body);
    }
    for l in &scopes.loops {
        assert!(in_range(l.body), "loop body {:?} of {n} tokens", l.body);
    }
    for g in &scopes.guards {
        assert!(in_range(g.live), "guard span {:?} of {n} tokens", g.live);
    }
    for a in &scopes.acquisitions {
        assert!(a.tok < n, "acquisition {} of {n} tokens", a.tok);
    }
    let _ = analyze_source("fuzz.rs", src, &LIB);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded, as a walker would see after a bad
    /// checkout) never panic lexing, scope analysis, or the rule pipeline.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..=300)) {
        well_formed(&String::from_utf8_lossy(&bytes));
    }

    /// Printable garbage — unbalanced parens, stray `=`s, newlines — keeps
    /// every scope span in bounds.
    #[test]
    fn garbage_text_keeps_spans_balanced(src in "[ -~\\n]{0,200}") {
        well_formed(&src);
    }

    /// Rust-shaped fragments (the adversarial middle ground: real keywords,
    /// wrong nesting) are total too.
    #[test]
    fn rust_shaped_fragments_are_total(
        parts in vec(
            prop_oneof![
                Just("fn f() {"),
                Just("}"),
                Just("{"),
                Just("let g = m.lock();"),
                Just("for x in xs {"),
                Just("while let Some(v) = it.next() {"),
                Just("drop(g);"),
                Just("return;"),
                Just("m.conn_enqueued();"),
                Just("m.conn_dequeued();"),
                Just("delta_vth(t);"),
                Just("thread::sleep(d);"),
                Just("// relia-lint: allow(unwrap-in-lib)"),
                Just("#[cfg(test)]"),
                Just("mod t {"),
                Just("match x {"),
                Just("=> {"),
                Just("\"str {"),
            ],
            0..=24,
        )
    ) {
        well_formed(&parts.join("\n"));
    }
}

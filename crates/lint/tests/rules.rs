//! Fixture-driven self-tests: every rule gets a positive fixture (known
//! violations at known lines), a suppressed fixture (the same code made
//! clean with `// relia-lint: allow(...)` pragmas), and a clean fixture
//! (idiomatic code that must not trip the rule). Fixtures live under
//! `tests/fixtures/` and are linted in memory — they are never compiled.

#![allow(clippy::unwrap_used)]

use relia_lint::{lint_source, lint_sources, Diagnostic, FileKind, FileOpts};

const LIB: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: false,
    handler: false,
    job: false,
};

const BIN: FileOpts = FileOpts {
    kind: FileKind::Binary,
    crate_root: false,
    handler: false,
    job: false,
};

const ROOT: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: true,
    handler: false,
    job: false,
};

const HANDLER: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: false,
    handler: true,
    job: false,
};

const JOB: FileOpts = FileOpts {
    kind: FileKind::Library,
    crate_root: false,
    handler: false,
    job: true,
};

fn lint(source: &str, opts: FileOpts) -> Vec<Diagnostic> {
    lint_source("fixture.rs", source, &opts)
}

/// (rule, line) pairs for compact assertions.
fn shape(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn r1_positive_flags_fields_and_params() {
    let d = lint(include_str!("fixtures/r1_positive.rs"), LIB);
    assert_eq!(
        shape(&d),
        vec![
            ("unit-leak", 2),
            ("unit-leak", 3),
            ("unit-leak", 4),
            ("unit-leak", 9),
            ("unit-leak", 9),
        ],
        "{d:?}"
    );
}

#[test]
fn r1_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r1_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r1_clean_is_clean() {
    let d = lint(include_str!("fixtures/r1_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r2_positive_flags_lib_but_not_tests_or_bins() {
    let src = include_str!("fixtures/r2_positive.rs");
    let d = lint(src, LIB);
    assert_eq!(
        shape(&d),
        vec![("unwrap-in-lib", 2), ("unwrap-in-lib", 3)],
        "{d:?}"
    );
    let bin = lint(src, BIN);
    assert!(bin.is_empty(), "binaries own their panics: {bin:?}");
}

#[test]
fn r2_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r2_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r2_clean_is_clean() {
    let d = lint(include_str!("fixtures/r2_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r3_positive_flags_nonzero_float_comparisons() {
    let d = lint(include_str!("fixtures/r3_positive.rs"), LIB);
    assert_eq!(shape(&d), vec![("float-eq", 2), ("float-eq", 5)], "{d:?}");
}

#[test]
fn r3_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r3_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r3_clean_is_clean() {
    let d = lint(include_str!("fixtures/r3_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r4_positive_flags_lib_prints_but_not_bins() {
    let src = include_str!("fixtures/r4_positive.rs");
    let d = lint(src, LIB);
    assert_eq!(
        shape(&d),
        vec![("print-in-lib", 2), ("print-in-lib", 3)],
        "{d:?}"
    );
    let bin = lint(src, BIN);
    assert!(bin.is_empty(), "binaries own stdout: {bin:?}");
}

#[test]
fn r4_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r4_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r4_clean_is_clean() {
    let d = lint(include_str!("fixtures/r4_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r5_positive_flags_crate_root_only() {
    let src = include_str!("fixtures/r5_positive.rs");
    let d = lint(src, ROOT);
    assert_eq!(shape(&d), vec![("missing-forbid-unsafe", 1)], "{d:?}");
    let non_root = lint(src, LIB);
    assert!(
        non_root.is_empty(),
        "R5 only applies to lib.rs: {non_root:?}"
    );
}

#[test]
fn r5_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r5_suppressed.rs"), ROOT);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r5_clean_is_clean() {
    let d = lint(include_str!("fixtures/r5_clean.rs"), ROOT);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r6_positive_flags_celsius_looking_literals() {
    let d = lint(include_str!("fixtures/r6_positive.rs"), LIB);
    assert_eq!(
        shape(&d),
        vec![
            ("celsius-kelvin", 2),
            ("celsius-kelvin", 3),
            ("celsius-kelvin", 4),
        ],
        "{d:?}"
    );
    assert!(d[0].message.contains("from_celsius"), "{:?}", d[0]);
}

#[test]
fn r6_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r6_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r6_clean_is_clean() {
    let d = lint(include_str!("fixtures/r6_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r7_positive_flags_handler_code_but_not_plain_libs() {
    let src = include_str!("fixtures/r7_positive.rs");
    let d = lint(src, HANDLER);
    assert_eq!(
        shape(&d),
        vec![
            ("blocking-in-handler", 2),
            ("blocking-in-handler", 3),
            ("blocking-in-handler", 5),
        ],
        "{d:?}"
    );
    let plain = lint(src, LIB);
    assert!(
        plain.is_empty(),
        "R7 only applies to handler code: {plain:?}"
    );
}

#[test]
fn r7_covers_breaker_and_brownout_handler_paths() {
    // Overload-control code is handler code: a breaker that *sleeps out*
    // its cooldown or a brownout path that slurps the body would pin the
    // very worker slots the control exists to protect.
    let src = include_str!("fixtures/r7_breaker_positive.rs");
    let d = lint(src, HANDLER);
    assert_eq!(
        shape(&d),
        vec![
            ("blocking-in-handler", 6),
            ("blocking-in-handler", 12),
            ("blocking-in-handler", 14),
        ],
        "{d:?}"
    );
}

#[test]
fn r7_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r7_suppressed.rs"), HANDLER);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r7_clean_is_clean() {
    let d = lint(include_str!("fixtures/r7_clean.rs"), HANDLER);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r8_positive_flags_guards_spanning_blocking_calls() {
    let d = lint(include_str!("fixtures/r8_positive.rs"), LIB);
    assert_eq!(
        shape(&d),
        vec![
            ("guard-across-blocking", 3),
            ("guard-across-blocking", 4),
            ("guard-across-blocking", 10),
        ],
        "{d:?}"
    );
    assert!(d[0].message.contains("thread::sleep"), "{:?}", d[0]);
    assert!(d[2].message.contains("delta_vth"), "{:?}", d[2]);
}

#[test]
fn r8_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r8_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r8_clean_is_clean() {
    let d = lint(include_str!("fixtures/r8_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r8_span_guards_held_across_blocking_are_not_flagged() {
    // RAII *span* guards (relia-obs tracing) deliberately stay open
    // across blocking phases — that is what they measure. R8 tracks only
    // lock guards (`.lock()`/`.read()`/`.write()`), so a span guard held
    // across `thread::sleep` or `recv()` must stay clean.
    let d = lint(include_str!("fixtures/r8_span_guard_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r9_positive_catches_inversion_across_two_files() {
    let d = lint_sources(&[
        ("a.rs", include_str!("fixtures/r9_positive_a.rs"), LIB),
        ("b.rs", include_str!("fixtures/r9_positive_b.rs"), LIB),
    ]);
    let r9: Vec<_> = d
        .iter()
        .filter(|d| d.rule == "lock-order-inversion")
        .collect();
    assert_eq!(r9.len(), 2, "{d:?}");
    assert_eq!((r9[0].file.as_str(), r9[0].line), ("a.rs", 3));
    assert_eq!((r9[1].file.as_str(), r9[1].line), ("b.rs", 3));
    // Each site names the other, so the fix is actionable from either end.
    assert!(r9[0].message.contains("b.rs:3"), "{}", r9[0].message);
    assert!(r9[1].message.contains("a.rs:3"), "{}", r9[1].message);
}

#[test]
fn r9_single_file_alone_is_silent() {
    // Nesting order is only wrong relative to the rest of the workspace.
    let d = lint(include_str!("fixtures/r9_positive_a.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r9_suppressed_is_clean() {
    let d = lint_sources(&[
        ("a.rs", include_str!("fixtures/r9_suppressed_a.rs"), LIB),
        ("b.rs", include_str!("fixtures/r9_suppressed_b.rs"), LIB),
    ]);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r9_clean_is_clean() {
    let d = lint_sources(&[
        ("a.rs", include_str!("fixtures/r9_clean_a.rs"), LIB),
        ("b.rs", include_str!("fixtures/r9_clean_b.rs"), LIB),
    ]);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r10_positive_flags_unpolled_loops_in_job_code_only() {
    let src = include_str!("fixtures/r10_positive.rs");
    let d = lint(src, JOB);
    assert_eq!(
        shape(&d),
        vec![("unpolled-loop", 4), ("unpolled-loop", 13)],
        "{d:?}"
    );
    let plain = lint(src, LIB);
    assert!(
        plain.is_empty(),
        "R10 only applies to handler/job code: {plain:?}"
    );
}

#[test]
fn r10_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r10_suppressed.rs"), JOB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r10_clean_is_clean() {
    let d = lint(include_str!("fixtures/r10_clean.rs"), JOB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r11_positive_flags_unbalanced_early_returns() {
    let d = lint(include_str!("fixtures/r11_positive.rs"), LIB);
    assert_eq!(
        shape(&d),
        vec![("counter-leak", 4), ("counter-leak", 14)],
        "{d:?}"
    );
    assert!(d[0].message.contains("jobs"), "{:?}", d[0]);
    assert!(d[1].message.contains("permits"), "{:?}", d[1]);
}

#[test]
fn r11_suppressed_is_clean() {
    let d = lint(include_str!("fixtures/r11_suppressed.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn r11_clean_is_clean() {
    let d = lint(include_str!("fixtures/r11_clean.rs"), LIB);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn stale_pragma_is_itself_reported() {
    let d = lint(include_str!("fixtures/stale_pragma.rs"), LIB);
    assert_eq!(shape(&d), vec![("stale-allow", 1)], "{d:?}");
}

#[test]
fn malformed_pragmas_are_reported() {
    let d = lint(include_str!("fixtures/bad_pragma.rs"), LIB);
    assert_eq!(
        shape(&d),
        vec![("bad-pragma", 1), ("bad-pragma", 2)],
        "{d:?}"
    );
}

#[test]
fn json_rendering_round_trips_the_fixture_shape() {
    let d = lint(include_str!("fixtures/r6_positive.rs"), LIB);
    let line = d[0].render_json();
    for key in ["\"file\":", "\"line\":2,", "\"rule\":\"celsius-kelvin\""] {
        assert!(line.contains(key), "{line}");
    }
}

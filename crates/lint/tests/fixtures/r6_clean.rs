pub fn temperatures(t_c: f64) -> (Kelvin, Kelvin, Kelvin, Kelvin) {
    let die = Kelvin(358.15);
    let absolute_zero = Kelvin(0.0);
    let converted = Kelvin::from_celsius(85.0);
    let computed = Kelvin(t_c + 273.15);
    (die, absolute_zero, converted, computed)
}

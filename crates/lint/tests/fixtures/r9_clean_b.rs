pub fn demote(s: &Shared) {
    let fast = s.fast.lock().unwrap_or_else(|e| e.into_inner());
    let slow = s.slow.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (fast, slow);
}

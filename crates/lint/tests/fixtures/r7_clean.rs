pub fn handle(r: &mut impl std::io::Read, limit: usize) -> std::io::Result<Vec<u8>> {
    let mut body = vec![0u8; limit];
    r.read_exact(&mut body)?;
    Ok(body)
}

pub fn wait(pair: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    let guard = pair.0.lock().unwrap_or_else(|e| e.into_inner());
    let _ = pair
        .1
        .wait_timeout(guard, std::time::Duration::from_millis(50));
}

pub fn load(data: Option<u32>) -> u32 {
    // The constant below is structurally valid by construction.
    // relia-lint: allow(unwrap-in-lib)
    let a = data.unwrap();
    let b = data.expect("present"); // relia-lint: allow(R2)
    a + b
}

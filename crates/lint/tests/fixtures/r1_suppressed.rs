pub struct Profile {
    pub temp: f64, // relia-lint: allow(unit-leak)
    pub t_standby: f64, // relia-lint: allow(R1)
}

// relia-lint: allow(unit-leak)
pub fn schedule(duration: f64) -> f64 {
    duration
}

pub fn accumulate(hoisted: &[Hoisted], vth0: f64) -> f64 {
    let mut total = 0.0;
    for h in hoisted {
        total += h.delta_vth_at(vth0);
    }
    total
}

pub fn project(model: &Model, times: &[Seconds]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < times.len() {
        out.push(model.delta_vth(times[i]));
        i += 1;
    }
    out
}

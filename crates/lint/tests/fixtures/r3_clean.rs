pub fn classify(x: f64, n: u32) -> bool {
    if x == 0.0 {
        return false;
    }
    (x - 1.5).abs() < 1e-9 || n == 3
}

// relia-lint: allow(unwrap-in-lib)
pub fn fixed() -> u32 {
    7
}

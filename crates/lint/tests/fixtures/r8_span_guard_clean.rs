pub fn traced_flush(tracer: &Tracer, state: &std::sync::Mutex<Vec<u8>>) {
    let span = tracer.span("checkpoint_flush");
    std::thread::sleep(std::time::Duration::from_millis(10));
    let drained = {
        let mut buf = state.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *buf)
    };
    let _ = (drained, span.elapsed_ns());
}

pub fn traced_recv(tracer: &Tracer, rx: &std::sync::mpsc::Receiver<u8>) -> u64 {
    let wait = tracer.span("job_queue_wait");
    let _ = rx.recv();
    wait.finish()
}

pub fn report(rows: usize) {
    println!("{rows} rows");
    eprintln!("warning: slow path");
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_mod() {
        println!("debugging a test is fine");
    }
}

pub fn load(data: Option<u32>) -> u32 {
    let a = data.unwrap();
    let b = data.expect("present");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_mod() {
        let z = Some(1).unwrap();
        assert_eq!(z, 1);
    }
}

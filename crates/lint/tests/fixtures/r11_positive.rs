pub fn submit(m: &Metrics, q: &Queue, job: Job) -> Result<(), Shed> {
    m.jobs_enqueued();
    if q.is_full() {
        return Err(Shed::QueueFull);
    }
    q.push(job);
    m.jobs_dequeued();
    Ok(())
}

pub fn acquire(m: &Metrics, budget: &Budget) -> Result<Token, Shed> {
    m.permits.fetch_add(1, Ordering::Relaxed);
    let Some(token) = budget.take() else {
        return Err(Shed::NoBudget);
    };
    m.permits.fetch_sub(1, Ordering::Relaxed);
    Ok(token)
}

pub fn load(data: Option<u32>) -> Result<u32, String> {
    data.ok_or_else(|| "missing".to_owned())
}

pub fn fallback(data: Option<u32>) -> u32 {
    data.unwrap_or(0)
}

pub fn report(rows: usize) -> String {
    format!("{rows} rows")
}

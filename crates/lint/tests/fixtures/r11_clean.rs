pub fn submit(m: &Metrics, q: &Queue, job: Job) -> Result<(), Shed> {
    m.jobs_enqueued();
    if q.is_full() {
        m.jobs_dequeued();
        return Err(Shed::QueueFull);
    }
    q.push(job);
    m.jobs_dequeued();
    Ok(())
}

pub fn hand_off(m: &Metrics, q: &Queue, job: Job) -> Result<(), Shed> {
    m.jobs_enqueued();
    let _inflight = m.adopt_inflight();
    if q.is_full() {
        return Err(Shed::QueueFull);
    }
    q.push(job);
    m.jobs_dequeued();
    Ok(())
}

pub fn count(m: &Metrics, ok: bool) {
    m.requests_total.fetch_add(1, Ordering::Relaxed);
    if !ok {
        return;
    }
    m.requests_ok.fetch_add(1, Ordering::Relaxed);
}

pub fn handle(r: &mut impl std::io::Read) -> Vec<u8> {
    // Startup jitter before the listener exists; no request in flight yet.
    // relia-lint: allow(blocking-in-handler)
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut body = Vec::new();
    r.read_to_end(&mut body).ok(); // relia-lint: allow(R7)
    body
}

pub fn flush(state: &std::sync::Mutex<Vec<u8>>, rx: &std::sync::mpsc::Receiver<u8>) {
    let mut buf = state.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::sleep(std::time::Duration::from_millis(10));
    let next = rx.recv();
    buf.extend(next.ok());
}

pub fn warm(cache: &std::sync::Mutex<Vec<f64>>, model: &Model) -> f64 {
    let guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    let dv = model.delta_vth(3.0);
    dv + guard.len() as f64
}

pub fn report(rows: usize) {
    println!("{rows} rows"); // relia-lint: allow(print-in-lib)
    // relia-lint: allow(R4)
    eprintln!("warning: slow path");
}

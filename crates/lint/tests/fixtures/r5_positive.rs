//! A crate root that forgot to forbid unsafe code.

pub fn f() -> u32 {
    7
}

pub fn classify(x: f64, n: u32) -> bool {
    if x == 1.5 {
        return true;
    }
    x != 2e3 && n > 0
}

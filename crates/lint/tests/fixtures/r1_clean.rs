pub struct Profile {
    pub temp: Kelvin,
    pub t_standby: Seconds,
    pub lifetimes: Vec<Seconds>,
    watts: f64,
}

pub fn schedule(duration: Seconds, temp: Kelvin, watts: f64) -> f64 {
    duration.0 * temp.0 * watts
}

fn private_helper(temp: f64) -> f64 {
    temp
}

pub fn with_closure() -> f64 {
    let f = |temp: f64| temp + 1.0;
    f(0.0)
}

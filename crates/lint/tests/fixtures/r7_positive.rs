pub fn handle(r: &mut impl std::io::Read) -> Vec<u8> {
    std::thread::sleep(std::time::Duration::from_millis(50));
    thread::sleep(backoff);
    let mut body = Vec::new();
    r.read_to_end(&mut body).ok();
    body
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_mod() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

// relia-lint: allow(not-a-rule)
// relia-lint: allow unwrap-in-lib
pub fn f() -> u32 {
    7
}

pub fn submit(m: &Metrics, q: &Queue, job: Job) -> Result<(), Shed> {
    m.jobs_enqueued();
    if q.is_full() {
        // The shed path is balanced by the reaper thread, which calls
        // jobs_dequeued() for every queue-full rejection it logs.
        // relia-lint: allow(counter-leak)
        return Err(Shed::QueueFull);
    }
    q.push(job);
    m.jobs_dequeued();
    Ok(())
}

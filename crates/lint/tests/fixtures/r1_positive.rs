pub struct Profile {
    pub temp: f64,
    pub t_standby: f64,
    pub lifetimes: Vec<f64>,
    watts: f64,
    label: String,
}

pub fn schedule(duration: f64, ambient_k: f64, watts: f64) -> f64 {
    duration + ambient_k + watts
}

pub fn liquid_nitrogen() -> Kelvin {
    // This one really is cryogenic.
    Kelvin(77.0) // relia-lint: allow(celsius-kelvin)
}

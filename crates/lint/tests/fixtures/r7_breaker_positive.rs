//! Breaker/brownout handler paths must not block: sleeping out a breaker
//! cooldown or slurping a request body pins a worker-pool slot — the
//! breaker admits, sheds, or probes, it never waits.
pub fn gate_with_breaker(open: bool, cooldown: std::time::Duration) -> bool {
    if open {
        std::thread::sleep(cooldown);
    }
    !open
}

pub fn brownout_shed_body(r: &mut impl std::io::Read, retry_after: u64) -> Vec<u8> {
    thread::sleep(std::time::Duration::from_secs(retry_after));
    let mut body = Vec::new();
    r.read_to_end(&mut body).ok();
    body
}

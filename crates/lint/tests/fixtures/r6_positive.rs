pub fn temperatures() -> (Kelvin, Kelvin, Kelvin) {
    let hot = Kelvin(85.0);
    let cryo = Kelvin(4.2);
    let int_lit = Kelvin(120);
    (hot, cryo, int_lit)
}

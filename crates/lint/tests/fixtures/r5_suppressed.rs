#![allow(dead_code)] // relia-lint: allow(missing-forbid-unsafe)

pub fn f() -> u32 {
    7
}

pub fn accumulate(hoisted: &[Hoisted], vth0: f64) -> f64 {
    let mut total = 0.0;
    // Bounded fan-in: at most 16 hoisted terms (caps enforced upstream),
    // and the caller polls its deadline once per chunk around this call.
    for h in hoisted {
        total += h.delta_vth_at(vth0); // relia-lint: allow(unpolled-loop)
    }
    total
}

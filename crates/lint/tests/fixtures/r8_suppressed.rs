pub fn drain(state: &std::sync::Mutex<Vec<u8>>, rx: &std::sync::mpsc::Receiver<u8>) {
    let mut buf = state.lock().unwrap_or_else(|e| e.into_inner());
    // Producers block on the buffer lock until the drain completes — the
    // serialized handoff is this lock's entire purpose (bounded queue).
    // relia-lint: allow(guard-across-blocking)
    let next = rx.recv();
    buf.extend(next.ok());
}

pub fn classify(x: f64) -> bool {
    // The sentinel is set from the same literal, so equality is exact.
    // relia-lint: allow(float-eq)
    if x == 1.5 {
        return true;
    }
    x != 2e3 // relia-lint: allow(R3)
}

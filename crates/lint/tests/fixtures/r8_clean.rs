pub fn flush(state: &std::sync::Mutex<Vec<u8>>, rx: &std::sync::mpsc::Receiver<u8>) {
    let drained = {
        let mut buf = state.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *buf)
    };
    std::thread::sleep(std::time::Duration::from_millis(10));
    let _ = rx.recv();
    let _ = drained;
}

pub fn warm(cache: &std::sync::Mutex<Vec<f64>>, model: &Model) -> f64 {
    let guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    let base = guard.len() as f64;
    drop(guard);
    model.delta_vth(base)
}

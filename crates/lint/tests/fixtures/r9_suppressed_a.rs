pub fn promote(s: &Shared) {
    let fast = s.fast.lock().unwrap_or_else(|e| e.into_inner());
    // Migration shim: promote() and demote() are mutually excluded by the
    // rebalance epoch; the inverted order cannot interleave until the old
    // path is deleted next release.
    // relia-lint: allow(lock-order-inversion)
    let slow = s.slow.lock().unwrap_or_else(|e| e.into_inner());
    let _ = (fast, slow);
}

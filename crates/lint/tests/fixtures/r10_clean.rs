pub fn accumulate(hoisted: &[Hoisted], vth0: f64, cancel: &CancelToken) -> Option<f64> {
    let mut total = 0.0;
    for h in hoisted {
        if cancel.is_cancelled() {
            return None;
        }
        total += h.delta_vth_at(vth0);
    }
    Some(total)
}

pub fn project(model: &Model, chunks: &[Chunk], deadline: &Deadline) -> Vec<f64> {
    let mut out = Vec::new();
    for chunk in chunks {
        if deadline.fire_if_due(now()) {
            break;
        }
        for t in chunk.times() {
            out.push(model.delta_vth(t));
        }
    }
    out
}

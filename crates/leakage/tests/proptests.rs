//! Property-based tests for leakage invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_cells::{Library, MosType, Network, Vector};
use relia_core::Kelvin;
use relia_leakage::models::DeviceModels;
use relia_leakage::solver::{network_current, NetworkState};
use relia_leakage::{cell_leakage, LeakageTable};
use std::sync::OnceLock;

fn shared_table() -> &'static (Library, LeakageTable) {
    static TABLE: OnceLock<(Library, LeakageTable)> = OnceLock::new();
    TABLE.get_or_init(|| {
        let lib = Library::ptm90();
        let table = LeakageTable::build(&lib, &DeviceModels::ptm90(), Kelvin(400.0));
        (lib, table)
    })
}

proptest! {
    /// Cell leakage is positive and finite for every cell, vector, and
    /// temperature in the operating range.
    #[test]
    fn leakage_positive_finite(bits in 0u32..16, temp in 300.0f64..420.0) {
        let lib = Library::ptm90();
        let m = DeviceModels::ptm90();
        for (_, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let b = cell_leakage(cell, &v.to_bools(), &m, Kelvin(temp));
            prop_assert!(b.total() > 0.0 && b.total().is_finite(), "{} {v}", cell.name());
        }
    }

    /// Leakage is monotone in temperature for every cell and vector.
    #[test]
    fn leakage_monotone_in_temperature(bits in 0u32..16, temp in 300.0f64..410.0) {
        let lib = Library::ptm90();
        let m = DeviceModels::ptm90();
        for (_, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let cold = cell_leakage(cell, &v.to_bools(), &m, Kelvin(temp)).total();
            let hot = cell_leakage(cell, &v.to_bools(), &m, Kelvin(temp + 10.0)).total();
            prop_assert!(hot > cold, "{} {v}: {hot} <= {cold}", cell.name());
        }
    }

    /// The network solver's current is monotone in the applied voltage.
    #[test]
    fn solver_monotone_in_voltage(v1 in 0.05f64..0.95) {
        let m = DeviceModels::ptm90();
        let inputs = [false, false, false];
        let state = NetworkState { mos: MosType::Nmos, inputs: &inputs, temp: Kelvin(350.0), width_scale: 1.0 };
        let chain = Network::series_chain(3);
        let lo = network_current(&chain, &state, &m, v1, 0.0);
        let hi = network_current(&chain, &state, &m, v1 + 0.05, 0.0);
        prop_assert!(hi > lo);
    }

    /// The lookup table agrees with direct evaluation.
    #[test]
    fn table_is_faithful(bits in 0u32..16) {
        let (lib, table) = shared_table();
        let m = DeviceModels::ptm90();
        for (id, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let direct = cell_leakage(cell, &v.to_bools(), &m, Kelvin(400.0)).total();
            prop_assert!((table.of(id, v).total() - direct).abs() < 1e-18);
        }
    }

    /// Expected leakage under probabilities is bounded by the vector
    /// extremes.
    #[test]
    fn expectation_is_bounded(p in prop::collection::vec(0.0f64..=1.0, 3)) {
        let (lib, table) = shared_table();
        let id = lib.find("NOR3").expect("in catalog");
        let e = table.expected(id, &p);
        let values: Vec<f64> = Vector::all(3).map(|v| table.of(id, v).total()).collect();
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(0.0, f64::max);
        prop_assert!(e >= lo - 1e-18 && e <= hi + 1e-18);
    }
}

//! Recursive series/parallel network current solver.
//!
//! Works in *normalized coordinates*: the network hangs between a high node
//! at `v` and a low node at `0`, all voltages measured relative to the rail
//! that the OFF devices' gates sit at. A PMOS pull-up network maps onto this
//! frame by mirroring (`u = V_dd − v`), so one solver serves both
//! polarities.
//!
//! * OFF device: exponential subthreshold with source-voltage suppression
//!   (the stacking effect).
//! * ON device: linear conductance (small drop).
//! * Series: the intermediate node voltage is found by bisection on current
//!   continuity — both branch currents are monotone in the node voltage.
//! * Parallel: currents add at equal terminal voltages.

use relia_cells::{MosType, Network};
use relia_core::units::Kelvin;

use crate::models::DeviceModels;

/// Per-evaluation context: polarity, device widths, ON/OFF states.
#[derive(Debug, Clone)]
pub struct NetworkState<'a> {
    /// Device polarity of the whole network.
    pub mos: MosType,
    /// Gate level of each stage input (true = logic 1), indexing the
    /// network's device pins.
    pub inputs: &'a [bool],
    /// Evaluation temperature.
    pub temp: Kelvin,
    /// Device-width multiplier (drive strength of the owning cell).
    pub width_scale: f64,
}

impl NetworkState<'_> {
    fn device_on(&self, pin: usize) -> bool {
        self.mos.conducts(self.inputs[pin])
    }
}

/// Current through `net` with `v_hi` volts across it (normalized frame).
///
/// For a fully conducting network this returns the (large) ON-conductance
/// current; callers interested in leakage evaluate only non-conducting
/// networks.
pub fn network_current(
    net: &Network,
    state: &NetworkState<'_>,
    models: &DeviceModels,
    v_hi: f64,
    v_lo: f64,
) -> f64 {
    match net {
        Network::Device(pin) => {
            let width = state.mos.default_width() * state.width_scale;
            if state.device_on(*pin) {
                models.on_current(width, v_hi, v_lo)
            } else {
                models.off_current(state.mos, width, v_hi, v_lo, state.temp)
            }
        }
        Network::Parallel(children) => children
            .iter()
            .map(|c| network_current(c, state, models, v_hi, v_lo))
            .sum(),
        Network::Series(children) => series_current(children, state, models, v_hi, v_lo),
    }
}

/// Current through a series chain, solving each intermediate node by
/// bisection. The chain is folded head/tail: `I(head, v_hi, v_mid) =
/// I(tail, v_mid, v_lo)`.
fn series_current(
    children: &[Network],
    state: &NetworkState<'_>,
    models: &DeviceModels,
    v_hi: f64,
    v_lo: f64,
) -> f64 {
    match children.len() {
        0 => 0.0,
        1 => network_current(&children[0], state, models, v_hi, v_lo),
        _ => {
            let head = &children[0];
            let tail = &children[1..];
            // g(v) = I_head(v_hi, v) − I_tail(v, v_lo) is monotone
            // decreasing in v, with g(v_lo) ≥ 0 ≥ g(v_hi).
            let mut lo = v_lo;
            let mut hi = v_hi;
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                let i_head = network_current(head, state, models, v_hi, mid);
                let i_tail = series_current(tail, state, models, mid, v_lo);
                if i_head > i_tail {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let v_mid = 0.5 * (lo + hi);
            // Return the average of the two branch currents to split the
            // residual bisection error symmetrically.
            0.5 * (network_current(head, state, models, v_hi, v_mid)
                + series_current(tail, state, models, v_mid, v_lo))
        }
    }
}

/// Stack suppression factor: leakage of a single OFF device divided by the
/// leakage of `depth` identical OFF devices in series, at `temp`.
///
/// ```
/// use relia_cells::MosType;
/// use relia_core::Kelvin;
/// use relia_leakage::models::DeviceModels;
/// use relia_leakage::solver::stack_factor;
///
/// let f2 = stack_factor(&DeviceModels::ptm90(), MosType::Nmos, 2, Kelvin(300.0));
/// assert!(f2 > 3.0 && f2 < 50.0); // classic ~10x two-stack suppression
/// ```
pub fn stack_factor(models: &DeviceModels, mos: MosType, depth: usize, temp: Kelvin) -> f64 {
    assert!(depth >= 1, "stack depth must be at least 1");
    // All devices OFF: for NMOS that means all gates low; for PMOS all high.
    let off_level = match mos {
        MosType::Nmos => false,
        MosType::Pmos => true,
    };
    let inputs: Vec<bool> = vec![off_level; depth];
    let state = NetworkState {
        mos,
        inputs: &inputs,
        temp,
        width_scale: 1.0,
    };
    let single = network_current(&Network::Device(0), &state, models, models.vdd, 0.0);
    let chain = Network::Series((0..depth).map(Network::Device).collect());
    let stacked = network_current(&chain, &state, models, models.vdd, 0.0);
    single / stacked.max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> DeviceModels {
        DeviceModels::ptm90()
    }

    fn state<'a>(mos: MosType, inputs: &'a [bool]) -> NetworkState<'a> {
        NetworkState {
            mos,
            inputs,
            temp: Kelvin(300.0),
            width_scale: 1.0,
        }
    }

    #[test]
    fn two_stack_suppression_is_large() {
        let f = stack_factor(&models(), MosType::Nmos, 2, Kelvin(300.0));
        assert!(f > 3.0, "factor {f}");
        let f3 = stack_factor(&models(), MosType::Nmos, 3, Kelvin(300.0));
        assert!(f3 > f, "3-stack {f3} <= 2-stack {f}");
    }

    #[test]
    fn suppression_weakens_at_high_temperature() {
        let cold = stack_factor(&models(), MosType::Nmos, 2, Kelvin(300.0));
        let hot = stack_factor(&models(), MosType::Nmos, 2, Kelvin(400.0));
        assert!(hot < cold, "hot {hot} cold {cold}");
    }

    #[test]
    fn parallel_currents_add() {
        let m = models();
        let inputs = [false, false];
        let st = state(MosType::Nmos, &inputs);
        let single = network_current(&Network::Device(0), &st, &m, 1.0, 0.0);
        let double = network_current(&Network::parallel_bank(2), &st, &m, 1.0, 0.0);
        assert!((double / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn on_device_in_series_barely_drops() {
        // Series [ON, OFF] should leak nearly as much as the OFF device
        // alone: the ON device is a near-short.
        let m = models();
        let on_off = [true, false]; // NMOS: first on, second off
        let st = state(MosType::Nmos, &on_off);
        let chain = Network::series_chain(2);
        let mixed = network_current(&chain, &st, &m, 1.0, 0.0);
        let off_only = {
            let inputs = [false];
            let st1 = state(MosType::Nmos, &inputs);
            network_current(&Network::Device(0), &st1, &m, 1.0, 0.0)
        };
        assert!(
            (mixed - off_only).abs() / off_only < 0.1,
            "mixed {mixed} vs {off_only}"
        );
    }

    #[test]
    fn current_monotone_in_applied_voltage() {
        let m = models();
        let inputs = [false, false];
        let st = state(MosType::Nmos, &inputs);
        let chain = Network::series_chain(2);
        let low = network_current(&chain, &st, &m, 0.5, 0.0);
        let high = network_current(&chain, &st, &m, 1.0, 0.0);
        assert!(high > low);
    }

    #[test]
    fn pmos_network_with_high_gates_is_off() {
        let m = models();
        let inputs = [true, true];
        let st = state(MosType::Pmos, &inputs);
        let i = network_current(&Network::series_chain(2), &st, &m, 1.0, 0.0);
        // Stacked OFF PMOS: small but positive.
        assert!(i > 0.0 && i < 1.0e-7, "I = {i}");
    }

    #[test]
    fn empty_series_conducts_nothing() {
        let m = models();
        let inputs: [bool; 0] = [];
        let st = state(MosType::Nmos, &inputs);
        assert_eq!(
            network_current(&Network::Series(vec![]), &st, &m, 1.0, 0.0),
            0.0
        );
    }
}

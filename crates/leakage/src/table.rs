//! The per-cell, per-vector leakage lookup table (the paper's Fig. 6
//! "leakage LUT", built by characterizing every cell under every input
//! pattern).

use relia_cells::{CellId, Library, Vector};
use relia_core::units::Kelvin;

use crate::cell::{cell_leakage, LeakageBreakdown};
use crate::models::DeviceModels;

/// A leakage lookup table for one library at one temperature.
#[derive(Debug, Clone)]
pub struct LeakageTable {
    temp: Kelvin,
    /// `entries[cell][vector_bits]`.
    entries: Vec<Vec<LeakageBreakdown>>,
}

impl LeakageTable {
    /// Characterizes every cell of `library` under all input patterns at
    /// `temp`.
    ///
    /// ```
    /// use relia_cells::{Library, Vector};
    /// use relia_core::Kelvin;
    /// use relia_leakage::{DeviceModels, LeakageTable};
    ///
    /// let lib = Library::ptm90();
    /// let t = LeakageTable::build(&lib, &DeviceModels::ptm90(), Kelvin(400.0));
    /// let inv = lib.find("INV").expect("in catalog");
    /// assert!(t.of(inv, Vector::zeros(1)).total() > 0.0);
    /// ```
    pub fn build(library: &Library, models: &DeviceModels, temp: Kelvin) -> Self {
        let entries = library
            .iter()
            .map(|(_, cell)| {
                Vector::all(cell.num_pins())
                    .map(|v| cell_leakage(cell, &v.to_bools(), models, temp))
                    .collect()
            })
            .collect();
        LeakageTable { temp, entries }
    }

    /// The characterization temperature.
    pub fn temp(&self) -> Kelvin {
        self.temp
    }

    /// Leakage of `cell` under `vector`.
    ///
    /// # Panics
    ///
    /// Panics when the id or vector width does not match the library the
    /// table was built from.
    pub fn of(&self, cell: CellId, vector: Vector) -> LeakageBreakdown {
        self.entries[cell.index()][vector.bits() as usize]
    }

    /// Expected leakage of `cell` under independent per-pin probabilities of
    /// being high (eq. 24: `Σ_IN I(IN)·P(IN)`).
    ///
    /// # Panics
    ///
    /// Panics when `pin_probs` has the wrong width.
    pub fn expected(&self, cell: CellId, pin_probs: &[f64]) -> f64 {
        let width = pin_probs.len();
        Vector::all(width)
            .map(|v| self.of(cell, v).total() * v.probability(pin_probs))
            .sum()
    }

    /// The minimum-leakage vector of `cell` and its leakage.
    pub fn min_vector(&self, cell: CellId, width: usize) -> (Vector, f64) {
        Vector::all(width)
            .map(|v| (v, self.of(cell, v).total()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // Vector::all yields at least the all-zero vector.
            // relia-lint: allow(unwrap-in-lib)
            .expect("at least one vector")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::Library;

    fn table() -> (Library, LeakageTable) {
        let lib = Library::ptm90();
        let t = LeakageTable::build(&lib, &DeviceModels::ptm90(), Kelvin(400.0));
        (lib, t)
    }

    #[test]
    fn table_matches_direct_evaluation() {
        let (lib, t) = table();
        let id = lib.find("NOR3").unwrap();
        let cell = lib.cell(id);
        for v in Vector::all(3) {
            let direct = cell_leakage(cell, &v.to_bools(), &DeviceModels::ptm90(), Kelvin(400.0));
            assert_eq!(t.of(id, v), direct);
        }
    }

    #[test]
    fn expected_interpolates_corners() {
        let (lib, t) = table();
        let id = lib.find("NAND2").unwrap();
        // At deterministic corners the expectation equals the table entry.
        for v in Vector::all(2) {
            let corner: Vec<f64> = v
                .to_bools()
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect();
            assert!((t.expected(id, &corner) - t.of(id, v).total()).abs() < 1e-18);
        }
        // And the uniform expectation is the plain average.
        let avg: f64 = Vector::all(2).map(|v| t.of(id, v).total()).sum::<f64>() / 4.0;
        assert!((t.expected(id, &[0.5, 0.5]) - avg).abs() < 1e-18);
    }

    #[test]
    fn min_vector_agrees_with_scan() {
        let (lib, t) = table();
        let id = lib.find("NAND3").unwrap();
        let (v, i) = t.min_vector(id, 3);
        assert_eq!(v.bits(), 0b000);
        for w in Vector::all(3) {
            assert!(t.of(id, w).total() >= i);
        }
    }
}

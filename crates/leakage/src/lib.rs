#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-leakage
//!
//! Standby-leakage substrate: input-vector-dependent subthreshold and
//! gate-oxide leakage for cells and circuits, with the transistor *stacking
//! effect* resolved numerically on each cell's series/parallel network.
//!
//! * [`models`] — the analytical device models (exponential subthreshold
//!   with temperature dependence, gate tunneling) calibrated to a
//!   90 nm-class process.
//! * [`solver`] — recursive series/parallel network current solver: OFF
//!   devices leak with source-voltage suppression, ON devices conduct;
//!   intermediate stack nodes are found by bisection on current continuity.
//! * [`cell`] — per-cell, per-input-vector leakage (all stages).
//! * [`table`] — the leakage lookup table the paper's flow builds by
//!   "simulating all the gates in the standard cell library under all
//!   possible input patterns".
//! * [`circuit`] — whole-netlist leakage under a standby vector, and
//!   expected leakage under signal probabilities (eq. 24).
//!
//! ```
//! use relia_cells::{Library, Vector};
//! use relia_leakage::{models::DeviceModels, table::LeakageTable};
//! use relia_core::Kelvin;
//!
//! let lib = Library::ptm90();
//! let table = LeakageTable::build(&lib, &DeviceModels::ptm90(), Kelvin(400.0));
//! let nand2 = lib.find("NAND2").expect("in catalog");
//! // The minimum-leakage vector of a NAND2 is (0,0): the stacked-off NMOS.
//! let min = Vector::all(2).min_by(|a, b| {
//!     table.of(nand2, *a).total().partial_cmp(&table.of(nand2, *b).total()).expect("finite")
//! }).expect("nonempty");
//! assert_eq!(min.bits(), 0b00);
//! ```

pub mod cell;
pub mod circuit;
pub mod liberty;
pub mod models;
pub mod solver;
pub mod table;

pub use cell::{cell_leakage, LeakageBreakdown};
pub use circuit::{circuit_leakage, expected_circuit_leakage};
pub use models::DeviceModels;
pub use table::LeakageTable;

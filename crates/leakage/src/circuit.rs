//! Whole-netlist leakage.

use relia_cells::Vector;
use relia_netlist::Circuit;
use relia_sim::{logic, SignalProbs, SimError};

use crate::table::LeakageTable;

/// Total leakage of the circuit frozen at the primary-input vector
/// `stimulus` (the standby state), in amperes.
///
/// The circuit is logic-simulated to resolve every gate's input state, then
/// each gate's leakage is looked up in `table`.
///
/// # Errors
///
/// Returns [`SimError::StimulusWidthMismatch`] for a wrong stimulus width.
///
/// ```
/// use relia_cells::Library;
/// use relia_core::Kelvin;
/// use relia_leakage::{circuit_leakage, DeviceModels, LeakageTable};
/// use relia_netlist::iscas;
///
/// let c = iscas::c17();
/// let table = LeakageTable::build(c.library(), &DeviceModels::ptm90(), Kelvin(400.0));
/// let i = circuit_leakage(&c, &[false; 5], &table)?;
/// assert!(i > 0.0);
/// # Ok::<(), relia_sim::SimError>(())
/// ```
pub fn circuit_leakage(
    circuit: &Circuit,
    stimulus: &[bool],
    table: &LeakageTable,
) -> Result<f64, SimError> {
    let values = logic::simulate(circuit, stimulus)?;
    let mut total = 0.0;
    for gate in circuit.gates() {
        let inputs: Vec<bool> = gate.inputs().iter().map(|&n| values.of(n)).collect();
        total += table.of(gate.cell(), Vector::from_bits(&inputs)).total();
    }
    Ok(total)
}

/// Expected leakage of the circuit under per-net signal probabilities
/// (eq. 24 applied gate by gate with the independence assumption) — the
/// *active-mode* leakage expectation.
pub fn expected_circuit_leakage(
    circuit: &Circuit,
    probs: &SignalProbs,
    table: &LeakageTable,
) -> f64 {
    circuit
        .gates()
        .iter()
        .map(|gate| {
            let pin_probs: Vec<f64> = gate.inputs().iter().map(|&n| probs.of(n)).collect();
            table.expected(gate.cell(), &pin_probs)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::DeviceModels;
    use relia_core::units::Kelvin;
    use relia_netlist::iscas;
    use relia_sim::prob;

    fn setup() -> (Circuit, LeakageTable) {
        let c = iscas::c17();
        let t = LeakageTable::build(c.library(), &DeviceModels::ptm90(), Kelvin(400.0));
        (c, t)
    }

    #[test]
    fn leakage_depends_on_vector() {
        let (c, t) = setup();
        let mut values: Vec<f64> = (0..32u32)
            .map(|bits| {
                let stim: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
                circuit_leakage(&c, &stim, &t).unwrap()
            })
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(values[0] > 0.0);
        assert!(
            values[31] / values[0] > 1.2,
            "vector dependence too flat: {} .. {}",
            values[0],
            values[31]
        );
    }

    #[test]
    fn expected_leakage_sits_inside_vector_range() {
        let (c, t) = setup();
        let sp = prob::propagate_uniform(&c).unwrap();
        let expected = expected_circuit_leakage(&c, &sp, &t);
        let (mut lo, mut hi) = (f64::MAX, 0.0f64);
        for bits in 0..32u32 {
            let stim: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let v = circuit_leakage(&c, &stim, &t).unwrap();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(expected > lo && expected < hi, "{lo} <= {expected} <= {hi}");
    }

    #[test]
    fn larger_circuits_leak_more() {
        let t400 = Kelvin(400.0);
        let m = DeviceModels::ptm90();
        let small = iscas::c17();
        let big = iscas::circuit("c432").unwrap();
        let ts = LeakageTable::build(small.library(), &m, t400);
        let tb = LeakageTable::build(big.library(), &m, t400);
        let is = circuit_leakage(&small, &[false; 5], &ts).unwrap();
        let ib = circuit_leakage(&big, &[false; 36], &tb).unwrap();
        assert!(ib > 10.0 * is);
    }
}

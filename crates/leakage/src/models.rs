//! Analytical 90 nm-class device models for leakage.
//!
//! Subthreshold conduction follows the standard exponential model with
//! temperature-dependent threshold and thermal voltage; gate tunneling is a
//! per-width constant for ON devices (the dominant contribution) and is
//! treated as temperature-insensitive. The calibration targets the paper's
//! operating point (`V_dd = 1.0 V`, `|V_th| = 220 mV`) with OFF-device
//! currents of order 100 nA per unit width at 400 K, and the sizing
//! asymmetry (PMOS drawn 2× wide, slightly leakier per device) that makes
//! the INV/NAND minimum-leakage vector stress the PMOS — the co-optimization
//! conflict at the heart of the paper.

use relia_cells::MosType;
use relia_core::consts::thermal_voltage;
use relia_core::units::Kelvin;

/// Device-model parameters for leakage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModels {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// NMOS threshold magnitude at 300 K, in volts.
    pub vth_n: f64,
    /// PMOS threshold magnitude at 300 K, in volts.
    pub vth_p: f64,
    /// Threshold temperature coefficient in V/K (threshold falls as the die
    /// heats, so leakage rises steeply with temperature).
    pub vth_temp_coeff: f64,
    /// Subthreshold scale current per unit width for NMOS, in amperes.
    pub i0_n: f64,
    /// Subthreshold scale current per unit width for PMOS, in amperes.
    pub i0_p: f64,
    /// Subthreshold swing ideality factor `n`.
    pub swing_n: f64,
    /// Drain-induced barrier lowering coefficient (V of threshold drop per
    /// V of `V_ds`). DIBL is what makes a full-`V_ds` single OFF device leak
    /// an order of magnitude more than a stack — the classic stacking
    /// effect.
    pub dibl: f64,
    /// Gate tunneling per unit width for an ON NMOS, in amperes.
    pub gate_leak_n: f64,
    /// Gate tunneling per unit width for an ON PMOS, in amperes.
    pub gate_leak_p: f64,
    /// Linear conductance per unit width of an ON device, in siemens
    /// (used for voltage drops across conducting devices in mixed stacks).
    pub g_on: f64,
}

impl DeviceModels {
    /// The default 90 nm-class calibration.
    pub fn ptm90() -> Self {
        DeviceModels {
            vdd: 1.0,
            vth_n: 0.22,
            vth_p: 0.22,
            vth_temp_coeff: 0.7e-3,
            i0_n: 0.3e-6,
            i0_p: 0.21e-6,
            swing_n: 1.5,
            dibl: 0.10,
            gate_leak_n: 8.0e-9,
            gate_leak_p: 1.5e-9,
            g_on: 1.0e-2,
        }
    }

    /// Effective threshold magnitude at `temp` for the given polarity.
    pub fn vth(&self, mos: MosType, temp: Kelvin) -> f64 {
        let vth0 = match mos {
            MosType::Nmos => self.vth_n,
            MosType::Pmos => self.vth_p,
        };
        (vth0 - self.vth_temp_coeff * (temp.0 - 300.0)).max(0.02)
    }

    /// Subthreshold scale current per unit width at `temp` (includes the
    /// `(T/300)²` mobility/DOS factor).
    pub fn i0(&self, mos: MosType, temp: Kelvin) -> f64 {
        let i0 = match mos {
            MosType::Nmos => self.i0_n,
            MosType::Pmos => self.i0_p,
        };
        i0 * (temp.0 / 300.0) * (temp.0 / 300.0)
    }

    /// Subthreshold current of an OFF device in *normalized* coordinates:
    /// the device conducts from a high node `v_hi` to a low node `v_lo`
    /// (both relative to the rail the network hangs from), with its gate at
    /// the rail (0 in normalized coordinates).
    ///
    /// The source sits at `v_lo`, so a raised `v_lo` gives the exponential
    /// stack-effect suppression `exp(−v_lo/(n·v_T))`.
    pub fn off_current(&self, mos: MosType, width: f64, v_hi: f64, v_lo: f64, temp: Kelvin) -> f64 {
        debug_assert!(v_hi >= v_lo - 1e-12);
        let vt = thermal_voltage(temp);
        let vth = self.vth(mos, temp);
        let vgs = -v_lo; // gate at 0, source at v_lo
        let vds = (v_hi - v_lo).max(0.0);
        // DIBL lowers the barrier in proportion to V_ds.
        let vth_eff = vth - self.dibl * vds;
        self.i0(mos, temp)
            * width
            * ((vgs - vth_eff) / (self.swing_n * vt)).exp()
            * (1.0 - (-vds / vt).exp())
    }

    /// Current through an ON device modeled as a linear conductance.
    pub fn on_current(&self, width: f64, v_hi: f64, v_lo: f64) -> f64 {
        self.g_on * width * (v_hi - v_lo).max(0.0)
    }

    /// Gate tunneling of an ON device (full `V_dd` across the oxide).
    pub fn gate_leak(&self, mos: MosType, width: f64) -> f64 {
        match mos {
            MosType::Nmos => self.gate_leak_n * width,
            MosType::Pmos => self.gate_leak_p * width,
        }
    }
}

impl Default for DeviceModels {
    fn default() -> Self {
        DeviceModels::ptm90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T300: Kelvin = Kelvin(300.0);
    const T400: Kelvin = Kelvin(400.0);

    #[test]
    fn off_current_rises_steeply_with_temperature() {
        let m = DeviceModels::ptm90();
        let cold = m.off_current(MosType::Nmos, 1.0, 1.0, 0.0, T300);
        let hot = m.off_current(MosType::Nmos, 1.0, 1.0, 0.0, T400);
        assert!(hot / cold > 10.0, "ratio {}", hot / cold);
    }

    #[test]
    fn off_current_magnitude_at_400k() {
        let m = DeviceModels::ptm90();
        let i = m.off_current(MosType::Nmos, 1.0, 1.0, 0.0, T400);
        assert!(i > 3.0e-8 && i < 3.0e-7, "I_off = {i}");
    }

    #[test]
    fn raised_source_suppresses_exponentially() {
        // The stacking effect: ~60 mV of source voltage cuts the current by
        // nearly an order of magnitude at room temperature.
        let m = DeviceModels::ptm90();
        let full = m.off_current(MosType::Nmos, 1.0, 1.0, 0.0, T300);
        let stacked = m.off_current(MosType::Nmos, 1.0, 1.0, 0.1, T300);
        assert!(full / stacked > 5.0, "ratio {}", full / stacked);
    }

    #[test]
    fn pmos_device_is_leakier_than_nmos_unit() {
        // PMOS drawn at 2x width out-leaks a unit NMOS despite the smaller
        // per-width scale — the INV asymmetry the paper relies on.
        let m = DeviceModels::ptm90();
        let n = m.off_current(MosType::Nmos, 1.0, 1.0, 0.0, T400);
        let p = m.off_current(MosType::Pmos, 2.0, 1.0, 0.0, T400);
        assert!(p > n);
    }

    #[test]
    fn gate_leak_asymmetry() {
        let m = DeviceModels::ptm90();
        assert!(m.gate_leak(MosType::Nmos, 1.0) > m.gate_leak(MosType::Pmos, 2.0));
    }

    #[test]
    fn on_current_is_linear() {
        let m = DeviceModels::ptm90();
        let a = m.on_current(1.0, 0.1, 0.0);
        let b = m.on_current(1.0, 0.2, 0.0);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = DeviceModels::ptm90();
        assert_eq!(m.off_current(MosType::Nmos, 1.0, 0.5, 0.5, T300), 0.0);
        assert_eq!(m.on_current(1.0, 0.5, 0.5), 0.0);
    }
}

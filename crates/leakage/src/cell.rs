//! Per-cell, per-input-vector leakage.

use relia_cells::{Cell, MosType};
use relia_core::units::Kelvin;

use crate::models::DeviceModels;
use crate::solver::{network_current, NetworkState};

/// Subthreshold and gate-leakage components of one evaluation, in amperes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageBreakdown {
    /// Subthreshold current through non-conducting networks.
    pub subthreshold: f64,
    /// Gate tunneling of conducting devices.
    pub gate: f64,
}

impl LeakageBreakdown {
    /// Total leakage current.
    pub fn total(&self) -> f64 {
        self.subthreshold + self.gate
    }
}

impl std::ops::Add for LeakageBreakdown {
    type Output = LeakageBreakdown;

    fn add(self, rhs: LeakageBreakdown) -> LeakageBreakdown {
        LeakageBreakdown {
            subthreshold: self.subthreshold + rhs.subthreshold,
            gate: self.gate + rhs.gate,
        }
    }
}

/// Leakage of `cell` under the static input vector `pins` at `temp`.
///
/// Every stage contributes: the stage's non-conducting network leaks
/// subthreshold current (stack effect resolved by the network solver), and
/// each conducting device contributes gate tunneling.
///
/// # Panics
///
/// Panics when `pins` has the wrong width.
///
/// ```
/// use relia_cells::Library;
/// use relia_core::Kelvin;
/// use relia_leakage::{cell_leakage, DeviceModels};
///
/// let lib = Library::ptm90();
/// let nor2 = lib.cell(lib.find("NOR2").expect("in catalog"));
/// let m = DeviceModels::ptm90();
/// let hot = cell_leakage(nor2, &[false, false], &m, Kelvin(400.0));
/// let stacked = cell_leakage(nor2, &[true, true], &m, Kelvin(400.0));
/// // (1,1) turns the PMOS stack off: far lower leakage than (0,0).
/// assert!(stacked.total() < hot.total());
/// ```
pub fn cell_leakage(
    cell: &Cell,
    pins: &[bool],
    models: &DeviceModels,
    temp: Kelvin,
) -> LeakageBreakdown {
    assert_eq!(
        pins.len(),
        cell.num_pins(),
        "cell {}: bad input width",
        cell.name()
    );
    let mut total = LeakageBreakdown::default();
    let mut stage_outs: Vec<bool> = Vec::with_capacity(cell.stages().len());
    for stage in cell.stages() {
        let stage_inputs = stage.resolve_inputs(pins, &stage_outs);
        let out = stage.eval(&stage_inputs);
        stage_outs.push(out);

        // Subthreshold through whichever network is off. In normalized
        // coordinates both networks see v_hi = V_dd across them.
        let width_scale = cell.drive_strength();
        if out {
            // Output high: the NMOS pull-down blocks and leaks.
            let pd = stage.pull_down();
            let state = NetworkState {
                mos: MosType::Nmos,
                inputs: &stage_inputs,
                temp,
                width_scale,
            };
            total.subthreshold += network_current(&pd, &state, models, models.vdd, 0.0);
        } else {
            // Output low: the PMOS pull-up blocks and leaks (mirrored frame).
            let state = NetworkState {
                mos: MosType::Pmos,
                inputs: &stage_inputs,
                temp,
                width_scale,
            };
            total.subthreshold += network_current(stage.pull_up(), &state, models, models.vdd, 0.0);
        }

        // Gate tunneling of conducting devices in both networks.
        for &pin in stage.pull_up().device_pins().iter() {
            if MosType::Pmos.conducts(stage_inputs[pin]) {
                total.gate +=
                    models.gate_leak(MosType::Pmos, MosType::Pmos.default_width() * width_scale);
            } else {
                total.gate +=
                    models.gate_leak(MosType::Nmos, MosType::Nmos.default_width() * width_scale);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::{Library, Vector};

    const T400: Kelvin = Kelvin(400.0);

    fn lib() -> Library {
        Library::ptm90()
    }

    fn leak(name: &str, pins: &[bool]) -> f64 {
        let l = lib();
        let cell = l.cell(l.find(name).unwrap());
        cell_leakage(cell, pins, &DeviceModels::ptm90(), T400).total()
    }

    #[test]
    fn inv_min_leakage_is_input_low() {
        // The paper's INV finding: the minimum-leakage input is 0, which is
        // exactly the input that stresses the PMOS (worst NBTI).
        assert!(leak("INV", &[false]) < leak("INV", &[true]));
    }

    #[test]
    fn nand2_min_leakage_is_00() {
        let mut best = (f64::MAX, 0u32);
        for v in Vector::all(2) {
            let i = leak("NAND2", &v.to_bools());
            if i < best.0 {
                best = (i, v.bits());
            }
        }
        assert_eq!(best.1, 0b00, "NAND2 MLV should be (0,0)");
    }

    #[test]
    fn nor2_min_leakage_is_11() {
        let mut best = (f64::MAX, 0u32);
        for v in Vector::all(2) {
            let i = leak("NOR2", &v.to_bools());
            if i < best.0 {
                best = (i, v.bits());
            }
        }
        assert_eq!(best.1, 0b11, "NOR2 MLV should be (1,1)");
    }

    #[test]
    fn nor2_max_leakage_is_00() {
        let mut worst = (0.0f64, 0u32);
        for v in Vector::all(2) {
            let i = leak("NOR2", &v.to_bools());
            if i > worst.0 {
                worst = (i, v.bits());
            }
        }
        assert_eq!(worst.1, 0b00, "NOR2 worst vector should be (0,0)");
    }

    #[test]
    fn leakage_is_positive_for_every_cell_and_vector() {
        let l = lib();
        let m = DeviceModels::ptm90();
        for (_, cell) in l.iter() {
            for v in Vector::all(cell.num_pins()) {
                let b = cell_leakage(cell, &v.to_bools(), &m, T400);
                assert!(b.subthreshold > 0.0, "{} {v}", cell.name());
                assert!(b.gate > 0.0, "{} {v}", cell.name());
                assert!(b.total().is_finite());
            }
        }
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let l = lib();
        let m = DeviceModels::ptm90();
        let cell = l.cell(l.find("NAND3").unwrap());
        let cold = cell_leakage(cell, &[true, true, false], &m, Kelvin(330.0));
        let hot = cell_leakage(cell, &[true, true, false], &m, Kelvin(400.0));
        assert!(hot.total() > 2.0 * cold.total());
    }

    #[test]
    fn breakdown_adds() {
        let a = LeakageBreakdown {
            subthreshold: 1.0,
            gate: 2.0,
        };
        let b = LeakageBreakdown {
            subthreshold: 0.5,
            gate: 0.25,
        };
        let c = a + b;
        assert_eq!(c.total(), 3.75);
    }

    #[test]
    fn multi_stage_cell_sums_stages() {
        // AND2 leaks at least as much as its NAND2 front stage alone.
        let and2 = leak("AND2", &[true, true]);
        let nand2 = leak("NAND2", &[true, true]);
        assert!(and2 > nand2);
    }
}

#[cfg(test)]
mod drive_leak_tests {
    use super::*;
    use relia_cells::Library;

    #[test]
    fn x2_leaks_twice_as_much() {
        let l = Library::ptm90();
        let m = DeviceModels::ptm90();
        let base = l.cell(l.find("NAND2").unwrap());
        let strong = l.cell(l.find("NAND2_X2").unwrap());
        for bits in 0..4u32 {
            let pins = [bits & 1 == 1, bits >> 1 & 1 == 1];
            let a = cell_leakage(base, &pins, &m, Kelvin(400.0)).total();
            let b = cell_leakage(strong, &pins, &m, Kelvin(400.0)).total();
            assert!((b / a - 2.0).abs() < 0.05, "bits {bits}: ratio {}", b / a);
        }
    }
}

//! The built-in 90 nm-class cell catalog.
//!
//! Gate-level topologies are exact (series/parallel transistor networks and
//! their duals); timing parameters are representative of a 90 nm library at
//! `V_dd = 1.0 V` — only their relative magnitudes matter to the reproduced
//! experiments.

use crate::cell::Cell;
use crate::network::Network;
use crate::stage::{Source, Stage};
use crate::timing::CellTiming;

fn timing(intrinsic_ps: f64, per_load_ps: f64, input_cap: f64) -> CellTiming {
    CellTiming {
        intrinsic_ps,
        per_load_ps,
        input_cap,
    }
}

fn pins(n: usize) -> Vec<Source> {
    (0..n).map(Source::Pin).collect()
}

fn single_stage(name: &str, pull_up: Network, n: usize, t: CellTiming) -> Cell {
    Cell::new(name, n, vec![Stage::new(pull_up, pins(n))], t)
        // relia-lint: allow(unwrap-in-lib)
        .expect("catalog cells are structurally valid")
}

/// NAND-like cell followed by an output inverter.
fn with_inverter(name: &str, pull_up: Network, n: usize, t: CellTiming) -> Cell {
    Cell::new(
        name,
        n,
        vec![
            Stage::new(pull_up, pins(n)),
            Stage::new(Network::Device(0), vec![Source::Stage(0)]),
        ],
        t,
    )
    // relia-lint: allow(unwrap-in-lib)
    .expect("catalog cells are structurally valid")
}

/// Builds the full built-in catalog.
pub fn builtin_cells() -> Vec<Cell> {
    let mut cells = vec![single_stage(
        "INV",
        Network::Device(0),
        1,
        timing(8.0, 4.0, 1.0),
    )];
    cells.push(with_inverter(
        "BUF",
        Network::Device(0),
        1,
        timing(16.0, 3.5, 1.0),
    ));

    // NAND: parallel PMOS pull-up / series NMOS pull-down.
    cells.push(single_stage(
        "NAND2",
        Network::parallel_bank(2),
        2,
        timing(12.0, 5.0, 1.2),
    ));
    cells.push(single_stage(
        "NAND3",
        Network::parallel_bank(3),
        3,
        timing(16.0, 6.0, 1.4),
    ));
    cells.push(single_stage(
        "NAND4",
        Network::parallel_bank(4),
        4,
        timing(20.0, 7.0, 1.6),
    ));

    // NOR: series PMOS pull-up / parallel NMOS pull-down.
    cells.push(single_stage(
        "NOR2",
        Network::series_chain(2),
        2,
        timing(14.0, 6.0, 1.2),
    ));
    cells.push(single_stage(
        "NOR3",
        Network::series_chain(3),
        3,
        timing(19.0, 7.5, 1.4),
    ));
    cells.push(single_stage(
        "NOR4",
        Network::series_chain(4),
        4,
        timing(24.0, 9.0, 1.6),
    ));

    // AND/OR: inverted forms with an output inverter.
    cells.push(with_inverter(
        "AND2",
        Network::parallel_bank(2),
        2,
        timing(18.0, 4.5, 1.2),
    ));
    cells.push(with_inverter(
        "AND3",
        Network::parallel_bank(3),
        3,
        timing(22.0, 5.0, 1.4),
    ));
    cells.push(with_inverter(
        "OR2",
        Network::series_chain(2),
        2,
        timing(20.0, 4.5, 1.2),
    ));
    cells.push(with_inverter(
        "OR3",
        Network::series_chain(3),
        3,
        timing(25.0, 5.0, 1.4),
    ));

    // XOR2 as the classic four-NAND tree:
    //   s0 = NAND(A, B); s1 = NAND(A, s0); s2 = NAND(B, s0);
    //   out = NAND(s1, s2).
    cells.push(
        Cell::new(
            "XOR2",
            2,
            vec![
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(0), Source::Pin(1)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(0), Source::Stage(0)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(1), Source::Stage(0)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Stage(1), Source::Stage(2)],
                ),
            ],
            timing(28.0, 6.0, 1.8),
        )
        // relia-lint: allow(unwrap-in-lib)
        .expect("catalog cells are structurally valid"),
    );

    // XNOR2 = XOR2 + output inverter.
    cells.push(
        Cell::new(
            "XNOR2",
            2,
            vec![
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(0), Source::Pin(1)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(0), Source::Stage(0)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(1), Source::Stage(0)],
                ),
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Stage(1), Source::Stage(2)],
                ),
                Stage::new(Network::Device(0), vec![Source::Stage(3)]),
            ],
            timing(30.0, 6.0, 1.8),
        )
        // relia-lint: allow(unwrap-in-lib)
        .expect("catalog cells are structurally valid"),
    );

    // AOI21: out = !(A·B + C).
    cells.push(single_stage(
        "AOI21",
        Network::Series(vec![
            Network::Parallel(vec![Network::Device(0), Network::Device(1)]),
            Network::Device(2),
        ]),
        3,
        timing(16.0, 6.5, 1.3),
    ));

    // OAI21: out = !((A + B)·C).
    cells.push(single_stage(
        "OAI21",
        Network::Parallel(vec![
            Network::Series(vec![Network::Device(0), Network::Device(1)]),
            Network::Device(2),
        ]),
        3,
        timing(16.0, 6.5, 1.3),
    ));

    // Double-drive variants of the workhorse cells: twice the width, half
    // the load sensitivity, twice the input load and leakage.
    let x2: Vec<Cell> = cells
        .iter()
        .filter(|c| matches!(c.name(), "INV" | "BUF" | "NAND2" | "NOR2" | "AND2" | "OR2"))
        .map(|c| c.with_drive_strength(2.0))
        .collect();
    cells.extend(x2);

    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(name: &str) -> Cell {
        builtin_cells()
            .into_iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("{name} missing from catalog"))
    }

    #[test]
    fn catalog_has_all_families() {
        let names: Vec<String> = builtin_cells()
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        for expected in [
            "INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "AND2", "AND3", "OR2",
            "OR3", "XOR2", "XNOR2", "AOI21", "OAI21",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    type TruthFn = Box<dyn Fn(&[bool]) -> bool>;

    #[test]
    fn truth_tables() {
        let cases: Vec<(&str, TruthFn)> = vec![
            ("INV", Box::new(|v: &[bool]| !v[0])),
            ("BUF", Box::new(|v: &[bool]| v[0])),
            ("NAND2", Box::new(|v: &[bool]| !(v[0] && v[1]))),
            ("NAND3", Box::new(|v: &[bool]| !(v[0] && v[1] && v[2]))),
            (
                "NAND4",
                Box::new(|v: &[bool]| !(v[0] && v[1] && v[2] && v[3])),
            ),
            ("NOR2", Box::new(|v: &[bool]| !(v[0] || v[1]))),
            ("NOR3", Box::new(|v: &[bool]| !(v[0] || v[1] || v[2]))),
            (
                "NOR4",
                Box::new(|v: &[bool]| !(v[0] || v[1] || v[2] || v[3])),
            ),
            ("AND2", Box::new(|v: &[bool]| v[0] && v[1])),
            ("AND3", Box::new(|v: &[bool]| v[0] && v[1] && v[2])),
            ("OR2", Box::new(|v: &[bool]| v[0] || v[1])),
            ("OR3", Box::new(|v: &[bool]| v[0] || v[1] || v[2])),
            ("XOR2", Box::new(|v: &[bool]| v[0] ^ v[1])),
            ("XNOR2", Box::new(|v: &[bool]| !(v[0] ^ v[1]))),
            ("AOI21", Box::new(|v: &[bool]| !((v[0] && v[1]) || v[2]))),
            ("OAI21", Box::new(|v: &[bool]| !((v[0] || v[1]) && v[2]))),
        ];
        for (name, f) in cases {
            let cell = find(name);
            let n = cell.num_pins();
            for v in crate::vector::Vector::all(n) {
                let bits = v.to_bools();
                assert_eq!(cell.eval(&bits), f(&bits), "{name}({v})");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = builtin_cells()
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn timing_is_positive() {
        for c in builtin_cells() {
            assert!(c.timing().intrinsic_ps > 0.0, "{}", c.name());
            assert!(c.timing().per_load_ps > 0.0, "{}", c.name());
            assert!(c.timing().input_cap > 0.0, "{}", c.name());
        }
    }

    #[test]
    fn nor_family_has_deep_stacks() {
        assert_eq!(find("NOR3").stages()[0].pull_up().max_stack_depth(), 3);
        assert_eq!(find("NAND3").stages()[0].pull_up().max_stack_depth(), 1);
    }
}

#[cfg(test)]
mod drive_variant_tests {
    use super::*;

    #[test]
    fn x2_variants_present() {
        let names: Vec<String> = builtin_cells()
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        for expected in [
            "INV_X2", "BUF_X2", "NAND2_X2", "NOR2_X2", "AND2_X2", "OR2_X2",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn x2_is_faster_under_load() {
        let cells = builtin_cells();
        let base = cells.iter().find(|c| c.name() == "NAND2").unwrap();
        let strong = cells.iter().find(|c| c.name() == "NAND2_X2").unwrap();
        let load = 6.0;
        assert!(strong.timing().delay_ps(load) < base.timing().delay_ps(load));
    }
}

//! A library cell: one or more complementary stages plus timing data.

use crate::error::CellError;
use crate::stage::{Source, Stage};
use crate::timing::CellTiming;
use crate::vector::Vector;

/// Identity of one PMOS device within a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PmosInfo {
    /// Stage the device belongs to.
    pub stage: usize,
    /// Device position within the stage's pull-up network (DFS order).
    pub index: usize,
}

/// A standard cell: named, with validated stages and timing parameters.
///
/// ```
/// use relia_cells::Library;
///
/// let lib = Library::ptm90();
/// let nand2 = lib.cell(lib.find("NAND2").expect("in catalog"));
/// assert_eq!(nand2.num_pins(), 2);
/// assert!(nand2.eval(&[true, false]));
/// assert!(!nand2.eval(&[true, true]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    num_pins: usize,
    stages: Vec<Stage>,
    timing: CellTiming,
    drive_strength: f64,
}

impl Cell {
    /// Creates a cell, validating that every stage input resolves to a valid
    /// pin or an *earlier* stage and that every network device references a
    /// declared stage input.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::DanglingInput`] for invalid references.
    pub fn new(
        name: impl Into<String>,
        num_pins: usize,
        stages: Vec<Stage>,
        timing: CellTiming,
    ) -> Result<Self, CellError> {
        let name = name.into();
        if stages.is_empty() {
            return Err(CellError::DanglingInput {
                cell: name,
                index: 0,
            });
        }
        for (si, stage) in stages.iter().enumerate() {
            stage.pull_up().validate(&name, stage.sources().len())?;
            for src in stage.sources() {
                let ok = match src {
                    Source::Pin(p) => *p < num_pins,
                    Source::Stage(s) => *s < si,
                };
                if !ok {
                    return Err(CellError::DanglingInput {
                        cell: name,
                        index: match src {
                            Source::Pin(p) => *p,
                            Source::Stage(s) => *s,
                        },
                    });
                }
            }
        }
        Ok(Cell {
            name,
            num_pins,
            stages,
            timing,
            drive_strength: 1.0,
        })
    }

    /// Returns a stronger variant of this cell: device widths scaled by
    /// `strength`, delay-per-load divided by it, input capacitance and
    /// leakage multiplied by it. The name gains an `_X<n>` suffix.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite strength.
    pub fn with_drive_strength(&self, strength: f64) -> Cell {
        assert!(
            strength > 0.0 && strength.is_finite(),
            "drive strength must be positive"
        );
        let mut scaled = self.clone();
        scaled.name = format!("{}_X{}", self.name, (strength as u32).max(1));
        scaled.drive_strength = self.drive_strength * strength;
        scaled.timing = CellTiming {
            intrinsic_ps: self.timing.intrinsic_ps,
            per_load_ps: self.timing.per_load_ps / strength,
            input_cap: self.timing.input_cap * strength,
        };
        scaled
    }

    /// Device-width multiplier relative to the minimum-size cell.
    pub fn drive_strength(&self) -> f64 {
        self.drive_strength
    }

    /// Cell name (e.g. `"NAND2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input pins.
    pub fn num_pins(&self) -> usize {
        self.num_pins
    }

    /// The cell's stages, in evaluation order; the last stage drives the
    /// output.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Timing parameters.
    pub fn timing(&self) -> &CellTiming {
        &self.timing
    }

    /// Checks an input slice's width.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InputWidthMismatch`] when it differs from
    /// [`Cell::num_pins`].
    pub fn check_width(&self, inputs: &[bool]) -> Result<(), CellError> {
        if inputs.len() == self.num_pins {
            Ok(())
        } else {
            Err(CellError::InputWidthMismatch {
                cell: self.name.clone(),
                expected: self.num_pins,
                got: inputs.len(),
            })
        }
    }

    /// Evaluates every stage, returning the per-stage outputs.
    ///
    /// # Panics
    ///
    /// Panics when `pins` has the wrong width; use [`Cell::check_width`]
    /// first for fallible validation.
    pub fn eval_stages(&self, pins: &[bool]) -> Vec<bool> {
        assert_eq!(
            pins.len(),
            self.num_pins,
            "cell {}: bad input width",
            self.name
        );
        let mut outs: Vec<bool> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let stage_inputs = stage.resolve_inputs(pins, &outs);
            outs.push(stage.eval(&stage_inputs));
        }
        outs
    }

    /// Evaluates the cell output.
    ///
    /// # Panics
    ///
    /// Panics when `pins` has the wrong width.
    pub fn eval(&self, pins: &[bool]) -> bool {
        *self
            .eval_stages(pins)
            .last()
            // Cell::new rejects stage-less cells, so this cannot fire.
            // relia-lint: allow(unwrap-in-lib)
            .expect("cells have at least one stage")
    }

    /// Total number of PMOS devices across all stages.
    pub fn pmos_count(&self) -> usize {
        self.stages.iter().map(Stage::pmos_count).sum()
    }

    /// Identity of each PMOS device, in the flat order used by
    /// [`Cell::stressed_pmos`].
    pub fn pmos_devices(&self) -> Vec<PmosInfo> {
        let mut out = Vec::with_capacity(self.pmos_count());
        for (si, stage) in self.stages.iter().enumerate() {
            for di in 0..stage.pmos_count() {
                out.push(PmosInfo {
                    stage: si,
                    index: di,
                });
            }
        }
        out
    }

    /// NBTI stress flags for every PMOS device in the cell under a static
    /// input vector (e.g. the standby state): `true` when the device sits at
    /// `V_gs = −V_dd`.
    ///
    /// # Panics
    ///
    /// Panics when `pins` has the wrong width.
    pub fn stressed_pmos(&self, pins: &[bool]) -> Vec<bool> {
        let stage_outs = self.eval_stages(pins);
        let mut flags = Vec::with_capacity(self.pmos_count());
        let mut prior_outs: Vec<bool> = Vec::new();
        for stage in &self.stages {
            let stage_inputs = stage.resolve_inputs(pins, &prior_outs);
            flags.extend(stage.stressed_pmos(&stage_inputs));
            prior_outs.push(stage.eval(&stage_inputs));
        }
        debug_assert_eq!(prior_outs, stage_outs);
        flags
    }

    /// Probability that each PMOS device is under stress, given independent
    /// per-pin probabilities of being high. Exact, by enumeration of all
    /// `2^num_pins` vectors.
    ///
    /// This is the per-device *duty cycle* of NBTI stress during active
    /// operation (the `c` of the AC model).
    ///
    /// # Panics
    ///
    /// Panics when `pin_probs` has the wrong width or the cell has more than
    /// 24 pins.
    pub fn stress_probabilities(&self, pin_probs: &[f64]) -> Vec<f64> {
        assert_eq!(
            pin_probs.len(),
            self.num_pins,
            "cell {}: bad prob width",
            self.name
        );
        let mut probs = vec![0.0; self.pmos_count()];
        for v in Vector::all(self.num_pins) {
            let p = v.probability(pin_probs);
            if p == 0.0 {
                continue;
            }
            for (i, stressed) in self.stressed_pmos(&v.to_bools()).iter().enumerate() {
                if *stressed {
                    probs[i] += p;
                }
            }
        }
        probs
    }

    /// Probability that the output is high, given independent per-pin
    /// probabilities of being high. Exact, by enumeration.
    ///
    /// # Panics
    ///
    /// Panics when `pin_probs` has the wrong width.
    pub fn output_probability(&self, pin_probs: &[f64]) -> f64 {
        assert_eq!(
            pin_probs.len(),
            self.num_pins,
            "cell {}: bad prob width",
            self.name
        );
        Vector::all(self.num_pins)
            .filter(|v| self.eval(&v.to_bools()))
            .map(|v| v.probability(pin_probs))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn inv() -> Cell {
        Cell::new(
            "INV",
            1,
            vec![Stage::new(Network::Device(0), vec![Source::Pin(0)])],
            CellTiming {
                intrinsic_ps: 8.0,
                per_load_ps: 4.0,
                input_cap: 1.0,
            },
        )
        .unwrap()
    }

    fn and2() -> Cell {
        // NAND2 stage followed by INV stage.
        Cell::new(
            "AND2",
            2,
            vec![
                Stage::new(
                    Network::parallel_bank(2),
                    vec![Source::Pin(0), Source::Pin(1)],
                ),
                Stage::new(Network::Device(0), vec![Source::Stage(0)]),
            ],
            CellTiming {
                intrinsic_ps: 16.0,
                per_load_ps: 5.0,
                input_cap: 1.2,
            },
        )
        .unwrap()
    }

    #[test]
    fn inverter_behaviour() {
        let c = inv();
        assert!(c.eval(&[false]));
        assert!(!c.eval(&[true]));
        assert_eq!(c.pmos_count(), 1);
        assert_eq!(c.stressed_pmos(&[false]), vec![true]);
    }

    #[test]
    fn and2_truth_table_and_stage_count() {
        let c = and2();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(c.eval(&[a, b]), a && b, "({a},{b})");
        }
        assert_eq!(c.pmos_count(), 3);
    }

    #[test]
    fn and2_stress_includes_internal_stage() {
        let c = and2();
        // (1,1): NAND2 out = 0, so its PMOS are unstressed (gates high);
        // the INV stage input is 0 so its PMOS is stressed.
        assert_eq!(c.stressed_pmos(&[true, true]), vec![false, false, true]);
        // (0,0): both NAND PMOS stressed, internal node 1, INV unstressed.
        assert_eq!(c.stressed_pmos(&[false, false]), vec![true, true, false]);
    }

    #[test]
    fn stress_probabilities_match_enumeration() {
        let c = and2();
        let probs = c.stress_probabilities(&[0.5, 0.5]);
        // NAND PMOS A stressed when A=0 (source at Vdd always): p = 0.5.
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        // INV PMOS stressed when NAND out = 0, i.e. A·B: p = 0.25.
        assert!((probs[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn output_probability_exact() {
        let c = and2();
        assert!((c.output_probability(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((c.output_probability(&[1.0, 0.3]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_forward_stage_reference() {
        let bad = Cell::new(
            "BAD",
            1,
            vec![Stage::new(Network::Device(0), vec![Source::Stage(0)])],
            CellTiming {
                intrinsic_ps: 1.0,
                per_load_ps: 1.0,
                input_cap: 1.0,
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn validation_rejects_dangling_pin() {
        let bad = Cell::new(
            "BAD",
            1,
            vec![Stage::new(Network::Device(0), vec![Source::Pin(3)])],
            CellTiming {
                intrinsic_ps: 1.0,
                per_load_ps: 1.0,
                input_cap: 1.0,
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn width_check() {
        let c = inv();
        assert!(c.check_width(&[true]).is_ok());
        assert!(c.check_width(&[true, false]).is_err());
    }
}

#[cfg(test)]
mod drive_tests {
    use super::*;
    use crate::network::Network;

    fn inv() -> Cell {
        Cell::new(
            "INV",
            1,
            vec![Stage::new(Network::Device(0), vec![Source::Pin(0)])],
            CellTiming {
                intrinsic_ps: 8.0,
                per_load_ps: 4.0,
                input_cap: 1.0,
            },
        )
        .expect("valid")
    }

    #[test]
    fn x2_scales_timing_and_name() {
        let strong = inv().with_drive_strength(2.0);
        assert_eq!(strong.name(), "INV_X2");
        assert_eq!(strong.drive_strength(), 2.0);
        assert_eq!(strong.timing().per_load_ps, 2.0);
        assert_eq!(strong.timing().input_cap, 2.0);
        assert_eq!(strong.timing().intrinsic_ps, 8.0);
    }

    #[test]
    fn x2_preserves_logic_and_stress() {
        let base = inv();
        let strong = base.with_drive_strength(2.0);
        for v in [false, true] {
            assert_eq!(base.eval(&[v]), strong.eval(&[v]));
            assert_eq!(base.stressed_pmos(&[v]), strong.stressed_pmos(&[v]));
        }
    }

    #[test]
    fn strength_composes() {
        let x4 = inv().with_drive_strength(2.0).with_drive_strength(2.0);
        assert_eq!(x4.drive_strength(), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_strength_panics() {
        inv().with_drive_strength(0.0);
    }
}

//! Error type for cell-library operations.

use std::error::Error;
use std::fmt;

/// Error returned by cell construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// An input slice of the wrong width was supplied.
    InputWidthMismatch {
        /// Cell name.
        cell: String,
        /// Width the cell expects.
        expected: usize,
        /// Width supplied.
        got: usize,
    },
    /// A network references a stage input that does not exist.
    DanglingInput {
        /// Cell name.
        cell: String,
        /// Offending input index.
        index: usize,
    },
    /// A cell name is not present in the library.
    UnknownCell {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::InputWidthMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "cell {cell} expects {expected} inputs but received {got}"
            ),
            CellError::DanglingInput { cell, index } => {
                write!(f, "cell {cell} references undefined stage input {index}")
            }
            CellError::UnknownCell { name } => write!(f, "unknown cell {name}"),
        }
    }
}

impl Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cell() {
        let e = CellError::InputWidthMismatch {
            cell: "NAND2".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("NAND2"));
    }
}

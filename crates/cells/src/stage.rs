//! One complementary CMOS stage of a (possibly multi-stage) cell.

use crate::network::{MosType, Network};

/// Where a stage input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// An external cell pin.
    Pin(usize),
    /// The output of an earlier stage of the same cell.
    Stage(usize),
}

/// A complementary static-CMOS stage: a PMOS pull-up network and its dual
/// NMOS pull-down, fed by a list of [`Source`]s.
///
/// The pull-down is always the structural dual of the pull-up, so the stage
/// is complementary by construction and its output is simply "does the
/// pull-up conduct".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    pull_up: Network,
    sources: Vec<Source>,
}

impl Stage {
    /// Creates a stage from its PMOS pull-up network and input sources.
    /// Device pin indices in `pull_up` index into `sources`.
    pub fn new(pull_up: Network, sources: Vec<Source>) -> Self {
        Stage { pull_up, sources }
    }

    /// The PMOS pull-up network.
    pub fn pull_up(&self) -> &Network {
        &self.pull_up
    }

    /// The NMOS pull-down network (the structural dual of the pull-up).
    pub fn pull_down(&self) -> Network {
        self.pull_up.dual()
    }

    /// The stage's input sources.
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// Resolves this stage's input levels from the cell pins and the outputs
    /// of earlier stages.
    ///
    /// # Panics
    ///
    /// Panics when a source references a pin or stage out of range (cells
    /// validate sources at construction).
    pub fn resolve_inputs(&self, pins: &[bool], stage_outputs: &[bool]) -> Vec<bool> {
        self.sources
            .iter()
            .map(|s| match s {
                Source::Pin(i) => pins[*i],
                Source::Stage(i) => stage_outputs[*i],
            })
            .collect()
    }

    /// Evaluates the stage output for resolved input levels.
    pub fn eval(&self, stage_inputs: &[bool]) -> bool {
        self.pull_up.conducts(MosType::Pmos, stage_inputs)
    }

    /// Number of PMOS devices in the stage.
    pub fn pmos_count(&self) -> usize {
        self.pull_up.device_count()
    }

    /// Stress flags for each PMOS in the stage (DFS order over the pull-up
    /// network) given resolved stage-input levels.
    pub fn stressed_pmos(&self, stage_inputs: &[bool]) -> Vec<bool> {
        let out_high = self.eval(stage_inputs);
        let mut flags = Vec::with_capacity(self.pmos_count());
        self.pull_up
            .collect_pmos_stress(stage_inputs, true, out_high, &mut flags);
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_stage() -> Stage {
        Stage::new(Network::Device(0), vec![Source::Pin(0)])
    }

    #[test]
    fn inverter_truth_table() {
        let s = inv_stage();
        assert!(s.eval(&[false]));
        assert!(!s.eval(&[true]));
    }

    #[test]
    fn inverter_stress() {
        let s = inv_stage();
        assert_eq!(s.stressed_pmos(&[false]), vec![true]);
        assert_eq!(s.stressed_pmos(&[true]), vec![false]);
    }

    #[test]
    fn resolve_mixes_pins_and_stages() {
        let s = Stage::new(
            Network::parallel_bank(2),
            vec![Source::Pin(1), Source::Stage(0)],
        );
        let inputs = s.resolve_inputs(&[true, false], &[true]);
        assert_eq!(inputs, vec![false, true]);
    }

    #[test]
    fn pull_down_is_dual() {
        let s = Stage::new(
            Network::series_chain(2),
            vec![Source::Pin(0), Source::Pin(1)],
        );
        assert_eq!(s.pull_down(), Network::parallel_bank(2));
    }
}

//! The cell library: a named, indexed collection of [`Cell`]s.

use std::collections::HashMap;

use crate::catalog::builtin_cells;
use crate::cell::Cell;
use crate::error::CellError;

/// Opaque identifier of a cell within a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// Raw index into the library's cell list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An indexed standard-cell library.
///
/// ```
/// use relia_cells::Library;
///
/// let lib = Library::ptm90();
/// let id = lib.find("INV").expect("INV is built in");
/// assert_eq!(lib.cell(id).name(), "INV");
/// assert!(lib.len() >= 16);
/// ```
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

impl Library {
    /// Builds the default 90 nm-class library from the built-in catalog.
    pub fn ptm90() -> Self {
        Library::from_cells(builtin_cells())
    }

    /// Builds a library from explicit cells. Later duplicates of a name
    /// shadow earlier ones in name lookup.
    pub fn from_cells(cells: Vec<Cell>) -> Self {
        let by_name = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_owned(), CellId(i)))
            .collect();
        Library { cells, by_name }
    }

    /// Looks up a cell by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a cell by name, with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::UnknownCell`] when `name` is not present.
    pub fn require(&self, name: &str) -> Result<CellId, CellError> {
        self.find(name).ok_or_else(|| CellError::UnknownCell {
            name: name.to_owned(),
        })
    }

    /// Fetches a cell by id.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::ptm90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_round_trip() {
        let lib = Library::ptm90();
        for (id, cell) in lib.iter() {
            assert_eq!(lib.find(cell.name()), Some(id));
        }
    }

    #[test]
    fn require_unknown_is_error() {
        let lib = Library::ptm90();
        assert!(matches!(
            lib.require("FLUXCAP"),
            Err(CellError::UnknownCell { .. })
        ));
    }

    #[test]
    fn default_is_ptm90() {
        assert_eq!(Library::default().len(), Library::ptm90().len());
    }
}

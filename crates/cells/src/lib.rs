#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-cells
//!
//! A 90 nm-class standard-cell library substrate for aging and leakage
//! analysis.
//!
//! Each cell is described structurally — as one or more complementary CMOS
//! *stages*, each with a series/parallel PMOS pull-up [`Network`] and its
//! dual NMOS pull-down — rather than as a black-box truth table. The
//! structural view is what the paper's analyses need:
//!
//! * logic evaluation falls out of network conduction ([`Cell::eval`]);
//! * the *internal-node dependence* of NBTI falls out of a switch-level
//!   solve: a PMOS is under negative-bias stress exactly when its gate is
//!   low **and** its source is held at `V_dd` through conducting devices
//!   ([`Cell::stressed_pmos`]);
//! * the *stacking effect* of subthreshold leakage falls out of the same
//!   series/parallel structure (consumed by the `relia-leakage` crate).
//!
//! ```
//! use relia_cells::{Library, Vector};
//!
//! let lib = Library::ptm90();
//! let nor2 = lib.cell(lib.find("NOR2").expect("in catalog"));
//! // NOR2(0,0) = 1; both stacked PMOS conduct and both are stressed.
//! assert!(nor2.eval(&[false, false]));
//! assert_eq!(nor2.stressed_pmos(&[false, false]), vec![true, true]);
//! // NOR2(1,0): the lower PMOS has gate 0 but its source is cut off from
//! // Vdd by the OFF upper PMOS — no stress. The paper's key asymmetry.
//! assert_eq!(nor2.stressed_pmos(&[true, false]), vec![false, false]);
//! let _ = Vector::all(2).count();
//! ```

pub mod catalog;
pub mod cell;
pub mod error;
pub mod library;
pub mod network;
pub mod stage;
pub mod timing;
pub mod vector;

pub use cell::{Cell, PmosInfo};
pub use error::CellError;
pub use library::{CellId, Library};
pub use network::{MosType, Network};
pub use stage::{Source, Stage};
pub use timing::CellTiming;
pub use vector::Vector;

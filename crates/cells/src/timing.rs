//! Per-cell timing parameters for the alpha-power-law delay model.
//!
//! The paper's STA needs only a load-dependent nominal delay per gate
//! (eq. 20) that NBTI then degrades multiplicatively (eq. 22). We use a
//! logical-effort-style linear model:
//!
//! ```text
//! d = intrinsic + per_load · C_load
//! ```
//!
//! with `C_load` expressed in unit input capacitances. Absolute picosecond
//! values are representative of a 90 nm library; only relative magnitudes
//! matter to the reproduced experiments.

/// Timing parameters of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Parasitic (unloaded) delay in picoseconds.
    pub intrinsic_ps: f64,
    /// Additional delay per unit of load capacitance, in picoseconds.
    pub per_load_ps: f64,
    /// Input capacitance presented on each pin, in unit capacitances.
    pub input_cap: f64,
}

impl CellTiming {
    /// Nominal (time-zero) delay driving `load` unit capacitances.
    ///
    /// ```
    /// use relia_cells::CellTiming;
    ///
    /// let t = CellTiming { intrinsic_ps: 8.0, per_load_ps: 4.0, input_cap: 1.0 };
    /// assert_eq!(t.delay_ps(2.0), 16.0);
    /// ```
    pub fn delay_ps(&self, load: f64) -> f64 {
        self.intrinsic_ps + self.per_load_ps * load.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_load() {
        let t = CellTiming {
            intrinsic_ps: 10.0,
            per_load_ps: 5.0,
            input_cap: 1.0,
        };
        assert!(t.delay_ps(3.0) > t.delay_ps(1.0));
    }

    #[test]
    fn negative_load_is_clamped() {
        let t = CellTiming {
            intrinsic_ps: 10.0,
            per_load_ps: 5.0,
            input_cap: 1.0,
        };
        assert_eq!(t.delay_ps(-2.0), 10.0);
    }
}

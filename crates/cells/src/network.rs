//! Series/parallel switch networks — the transistor-level structure of one
//! CMOS stage.
//!
//! A [`Network`] is a tree whose leaves are MOS devices gated by stage
//! inputs. A PMOS pull-up network conducts between `V_dd` and the stage
//! output; its dual NMOS pull-down conducts between the output and ground.
//! The same tree drives three analyses: logic (conduction), NBTI stress
//! (which PMOS see `V_gs = −V_dd`), and leakage (stack topology).

use crate::error::CellError;

/// MOS polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// P-channel device: conducts when its gate input is low.
    Pmos,
    /// N-channel device: conducts when its gate input is high.
    Nmos,
}

impl MosType {
    /// Whether a device of this polarity conducts for the given gate level.
    pub fn conducts(self, gate: bool) -> bool {
        match self {
            MosType::Pmos => !gate,
            MosType::Nmos => gate,
        }
    }

    /// Default device width (in multiples of the minimum NMOS width) used by
    /// the library: PMOS are drawn twice as wide to balance drive strength.
    pub fn default_width(self) -> f64 {
        match self {
            MosType::Pmos => 2.0,
            MosType::Nmos => 1.0,
        }
    }
}

/// A series/parallel transistor network over stage inputs `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Network {
    /// A single device gated by stage input `usize`.
    Device(usize),
    /// Sub-networks in series; the first element sits nearest the rail
    /// (`V_dd` for a pull-up network).
    Series(Vec<Network>),
    /// Sub-networks in parallel.
    Parallel(Vec<Network>),
}

impl Network {
    /// Convenience constructor: `n` devices in series gated by inputs
    /// `0..n` (the canonical NAND pull-down / NOR pull-up shape).
    pub fn series_chain(n: usize) -> Network {
        Network::Series((0..n).map(Network::Device).collect())
    }

    /// Convenience constructor: `n` devices in parallel gated by inputs
    /// `0..n`.
    pub fn parallel_bank(n: usize) -> Network {
        Network::Parallel((0..n).map(Network::Device).collect())
    }

    /// Whether the network conducts for the given stage-input levels, for
    /// devices of polarity `mos`.
    ///
    /// # Panics
    ///
    /// Panics if a device references an input index outside `inputs` (cells
    /// validate this at construction).
    pub fn conducts(&self, mos: MosType, inputs: &[bool]) -> bool {
        match self {
            Network::Device(pin) => mos.conducts(inputs[*pin]),
            Network::Series(children) => children.iter().all(|c| c.conducts(mos, inputs)),
            Network::Parallel(children) => children.iter().any(|c| c.conducts(mos, inputs)),
        }
    }

    /// The structural dual (series ↔ parallel), which is the complementary
    /// network of a static CMOS stage.
    ///
    /// ```
    /// use relia_cells::Network;
    ///
    /// let pu = Network::series_chain(2); // NOR2 pull-up
    /// assert_eq!(pu.dual(), Network::parallel_bank(2)); // NOR2 pull-down
    /// ```
    pub fn dual(&self) -> Network {
        match self {
            Network::Device(pin) => Network::Device(*pin),
            Network::Series(children) => {
                Network::Parallel(children.iter().map(Network::dual).collect())
            }
            Network::Parallel(children) => {
                Network::Series(children.iter().map(Network::dual).collect())
            }
        }
    }

    /// Number of devices in the network.
    pub fn device_count(&self) -> usize {
        match self {
            Network::Device(_) => 1,
            Network::Series(children) | Network::Parallel(children) => {
                children.iter().map(Network::device_count).sum()
            }
        }
    }

    /// Gate input index of every device in DFS order.
    pub fn device_pins(&self) -> Vec<usize> {
        let mut pins = Vec::with_capacity(self.device_count());
        self.collect_pins(&mut pins);
        pins
    }

    fn collect_pins(&self, pins: &mut Vec<usize>) {
        match self {
            Network::Device(pin) => pins.push(*pin),
            Network::Series(children) | Network::Parallel(children) => {
                for c in children {
                    c.collect_pins(pins);
                }
            }
        }
    }

    /// The largest series stack depth of the network (1 for a single
    /// device). Leakage suppression grows with this depth.
    pub fn max_stack_depth(&self) -> usize {
        match self {
            Network::Device(_) => 1,
            Network::Series(children) => children.iter().map(Network::max_stack_depth).sum(),
            Network::Parallel(children) => children
                .iter()
                .map(Network::max_stack_depth)
                .max()
                .unwrap_or(0),
        }
    }

    /// Validates that every device references an input below `width`.
    pub(crate) fn validate(&self, cell: &str, width: usize) -> Result<(), CellError> {
        match self {
            Network::Device(pin) => {
                if *pin >= width {
                    Err(CellError::DanglingInput {
                        cell: cell.to_owned(),
                        index: *pin,
                    })
                } else {
                    Ok(())
                }
            }
            Network::Series(children) | Network::Parallel(children) => {
                children.iter().try_for_each(|c| c.validate(cell, width))
            }
        }
    }

    /// Switch-level stress analysis for a **PMOS pull-up** network.
    ///
    /// Appends to `out` one flag per device (DFS order): `true` when the
    /// device's gate is low *and* one of its source/drain terminals is held
    /// at `V_dd` through conducting devices — the condition for
    /// `V_gs = −V_dd` NBTI stress. `top_at_vdd` says whether the terminal
    /// nearer the rail is at `V_dd`; `bottom_at_vdd` whether the terminal
    /// nearer the output is (i.e. the stage output is logic 1).
    ///
    /// Most callers want [`crate::Cell::stressed_pmos`]; this low-level
    /// form is exposed for custom network analyses and cross-validation.
    pub fn collect_pmos_stress(
        &self,
        inputs: &[bool],
        top_at_vdd: bool,
        bottom_at_vdd: bool,
        out: &mut Vec<bool>,
    ) {
        match self {
            Network::Device(pin) => {
                let gate_low = !inputs[*pin];
                out.push(gate_low && (top_at_vdd || bottom_at_vdd));
            }
            Network::Parallel(children) => {
                for c in children {
                    c.collect_pmos_stress(inputs, top_at_vdd, bottom_at_vdd, out);
                }
            }
            Network::Series(children) => {
                let n = children.len();
                // Forward pass: is the node above child i pulled to Vdd?
                let mut from_top = vec![false; n];
                let mut driven = top_at_vdd;
                for (i, c) in children.iter().enumerate() {
                    from_top[i] = driven;
                    driven = driven && c.conducts(MosType::Pmos, inputs);
                }
                // Backward pass: is the node below child i pulled to Vdd?
                let mut from_bottom = vec![false; n];
                let mut driven = bottom_at_vdd;
                for (i, c) in children.iter().enumerate().rev() {
                    from_bottom[i] = driven;
                    driven = driven && c.conducts(MosType::Pmos, inputs);
                }
                for (i, c) in children.iter().enumerate() {
                    c.collect_pmos_stress(inputs, from_top[i], from_bottom[i], out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_conduction() {
        assert!(MosType::Pmos.conducts(false));
        assert!(!MosType::Pmos.conducts(true));
        assert!(MosType::Nmos.conducts(true));
        assert!(!MosType::Nmos.conducts(false));
    }

    #[test]
    fn series_chain_is_and_of_conduction() {
        let net = Network::series_chain(3);
        // PMOS series conducts only when all inputs are low.
        assert!(net.conducts(MosType::Pmos, &[false, false, false]));
        assert!(!net.conducts(MosType::Pmos, &[false, true, false]));
    }

    #[test]
    fn parallel_bank_is_or_of_conduction() {
        let net = Network::parallel_bank(3);
        assert!(net.conducts(MosType::Pmos, &[true, false, true]));
        assert!(!net.conducts(MosType::Pmos, &[true, true, true]));
    }

    #[test]
    fn dual_is_involutive() {
        let aoi21_pu = Network::Series(vec![
            Network::Parallel(vec![Network::Device(0), Network::Device(1)]),
            Network::Device(2),
        ]);
        assert_eq!(aoi21_pu.dual().dual(), aoi21_pu);
    }

    #[test]
    fn complementarity_of_duals() {
        // For any input vector, exactly one of (PU on PMOS, dual on NMOS)
        // conducts.
        let pu = Network::Series(vec![
            Network::Parallel(vec![Network::Device(0), Network::Device(1)]),
            Network::Device(2),
        ]);
        let pd = pu.dual();
        for v in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 == 1).collect();
            let up = pu.conducts(MosType::Pmos, &inputs);
            let down = pd.conducts(MosType::Nmos, &inputs);
            assert_ne!(up, down, "inputs {inputs:?}");
        }
    }

    #[test]
    fn device_counts_and_pins() {
        let net = Network::Series(vec![
            Network::Parallel(vec![Network::Device(0), Network::Device(1)]),
            Network::Device(2),
        ]);
        assert_eq!(net.device_count(), 3);
        assert_eq!(net.device_pins(), vec![0, 1, 2]);
        assert_eq!(net.max_stack_depth(), 2);
        assert_eq!(Network::series_chain(4).max_stack_depth(), 4);
        assert_eq!(Network::parallel_bank(4).max_stack_depth(), 1);
    }

    #[test]
    fn validation_catches_dangling_pin() {
        let net = Network::Device(5);
        assert!(net.validate("X", 2).is_err());
        assert!(net.validate("X", 6).is_ok());
    }

    #[test]
    fn nor2_stress_asymmetry() {
        // NOR2 pull-up: series [A (top, at Vdd), B (bottom, at out)].
        let pu = Network::series_chain(2);
        let stress = |a: bool, b: bool| {
            let inputs = [a, b];
            let out_high = pu.conducts(MosType::Pmos, &inputs);
            let mut s = Vec::new();
            pu.collect_pmos_stress(&inputs, true, out_high, &mut s);
            s
        };
        // (0,0): both conduct; both stressed.
        assert_eq!(stress(false, false), vec![true, true]);
        // (0,1): A on and stressed; B gate high, unstressed.
        assert_eq!(stress(false, true), vec![true, false]);
        // (1,0): A off blocks Vdd; out is 0; B gate low but floats — no
        // stress. The internal-node dependence the paper highlights.
        assert_eq!(stress(true, false), vec![false, false]);
        // (1,1): nothing stressed.
        assert_eq!(stress(true, true), vec![false, false]);
    }

    #[test]
    fn parallel_devices_all_see_vdd() {
        // NAND2 pull-up: parallel PMOS, each tied to Vdd directly.
        let pu = Network::parallel_bank(2);
        let mut s = Vec::new();
        pu.collect_pmos_stress(&[false, true], true, false, &mut s);
        assert_eq!(s, vec![true, false]);
    }

    #[test]
    fn stress_through_output_side() {
        // Series [A, B] with the output high through another path: B sees
        // Vdd from below even when A is off.
        let pu = Network::series_chain(2);
        let mut s = Vec::new();
        pu.collect_pmos_stress(&[true, false], true, true, &mut s);
        assert_eq!(s, vec![false, true]);
    }
}

//! Input vectors over a fixed pin width.

use std::fmt;

/// An input vector for up to 32 pins, stored as a bitmask with
/// least-significant bit = pin 0.
///
/// ```
/// use relia_cells::Vector;
///
/// let v = Vector::from_bits(&[true, false, true]);
/// assert_eq!(v.bit(0), true);
/// assert_eq!(v.bit(1), false);
/// assert_eq!(format!("{v}"), "101");
/// assert_eq!(Vector::all(3).count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vector {
    bits: u32,
    width: usize,
}

impl Vector {
    /// Maximum supported width.
    pub const MAX_WIDTH: usize = 32;

    /// Creates a vector from a raw bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`Vector::MAX_WIDTH`].
    pub fn new(bits: u32, width: usize) -> Self {
        assert!(width <= Self::MAX_WIDTH, "vector width {width} > 32");
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        Vector {
            bits: bits & mask,
            width,
        }
    }

    /// Creates a vector from explicit levels (index 0 = pin 0).
    pub fn from_bits(levels: &[bool]) -> Self {
        let mut bits = 0u32;
        for (i, &b) in levels.iter().enumerate() {
            if b {
                bits |= 1 << i;
            }
        }
        Vector::new(bits, levels.len())
    }

    /// The all-zero vector of the given width.
    pub fn zeros(width: usize) -> Self {
        Vector::new(0, width)
    }

    /// The all-one vector of the given width.
    pub fn ones(width: usize) -> Self {
        Vector::new(u32::MAX, width)
    }

    /// Level of pin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.width,
            "pin {i} out of range for width {}",
            self.width
        );
        self.bits >> i & 1 == 1
    }

    /// Returns a copy with pin `i` set to `level`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn with_bit(&self, i: usize, level: bool) -> Self {
        assert!(
            i < self.width,
            "pin {i} out of range for width {}",
            self.width
        );
        let bits = if level {
            self.bits | (1 << i)
        } else {
            self.bits & !(1 << i)
        };
        Vector::new(bits, self.width)
    }

    /// Number of pins.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw bitmask.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Expands to a `Vec<bool>` (index 0 = pin 0).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    /// Iterates over all `2^width` vectors in ascending bitmask order.
    ///
    /// # Panics
    ///
    /// Panics if `width > 24` (the full enumeration would be excessive).
    pub fn all(width: usize) -> impl Iterator<Item = Vector> {
        assert!(width <= 24, "exhaustive enumeration capped at 24 pins");
        (0..(1u32 << width)).map(move |bits| Vector::new(bits, width))
    }

    /// Joint probability of this vector under independent per-pin
    /// probabilities of being high.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != width`.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        assert_eq!(probs.len(), self.width, "probability width mismatch");
        (0..self.width)
            .map(|i| {
                if self.bit(i) {
                    probs[i]
                } else {
                    1.0 - probs[i]
                }
            })
            .product()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pin 0 first, reading left to right.
        for i in 0..self.width {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Vector::from_bits(&[true, true, false, true]);
        assert_eq!(v.to_bools(), vec![true, true, false, true]);
        assert_eq!(v.width(), 4);
    }

    #[test]
    fn zeros_and_ones() {
        assert_eq!(Vector::zeros(3).bits(), 0);
        assert_eq!(Vector::ones(3).bits(), 0b111);
    }

    #[test]
    fn with_bit_is_pure() {
        let v = Vector::zeros(2);
        let w = v.with_bit(1, true);
        assert!(!v.bit(1));
        assert!(w.bit(1));
    }

    #[test]
    fn enumeration_is_complete_and_distinct() {
        let all: Vec<Vector> = Vector::all(4).collect();
        assert_eq!(all.len(), 16);
        let mut sorted = all.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let probs = [0.3, 0.9, 0.5];
        let total: f64 = Vector::all(3).map(|v| v.probability(&probs)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Vector::zeros(2).bit(2);
    }
}

//! Property-based tests for cell-library invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_cells::{Library, MosType, Network, Vector};

/// Strategy generating random series/parallel networks over `width` inputs.
fn network(width: usize) -> impl Strategy<Value = Network> {
    let leaf = (0..width).prop_map(Network::Device);
    leaf.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Network::Series),
            prop::collection::vec(inner, 2..4).prop_map(Network::Parallel),
        ]
    })
}

proptest! {
    /// A network and its dual are complementary: on any input, the PMOS view
    /// of the network conducts exactly when the NMOS view of the dual does
    /// not.
    #[test]
    fn dual_networks_are_complementary(net in network(4), bits in 0u32..16) {
        let inputs = Vector::new(bits, 4).to_bools();
        let pu = net.conducts(MosType::Pmos, &inputs);
        let pd = net.dual().conducts(MosType::Nmos, &inputs);
        prop_assert_ne!(pu, pd);
    }

    /// Dual is an involution and preserves device count.
    #[test]
    fn dual_involution(net in network(4)) {
        prop_assert_eq!(net.dual().dual(), net.clone());
        prop_assert_eq!(net.dual().device_count(), net.device_count());
    }

    /// A stressed PMOS always has its gate low, in every catalog cell.
    #[test]
    fn stress_implies_gate_consistency(bits in 0u32..16) {
        let lib = Library::ptm90();
        for (_, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let flags = cell.stressed_pmos(&v.to_bools());
            prop_assert_eq!(flags.len(), cell.pmos_count());
        }
    }

    /// Stress probabilities are valid probabilities and match deterministic
    /// evaluation at the 0/1 corners.
    #[test]
    fn stress_probabilities_are_probabilities(bits in 0u32..16) {
        let lib = Library::ptm90();
        for (_, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let corner: Vec<f64> = v.to_bools().iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let probs = cell.stress_probabilities(&corner);
            let det = cell.stressed_pmos(&v.to_bools());
            for (p, d) in probs.iter().zip(det.iter()) {
                let expected = if *d { 1.0 } else { 0.0 };
                prop_assert!((p - expected).abs() < 1e-12);
            }
        }
    }

    /// Output probability at probability corners matches logic evaluation.
    #[test]
    fn output_probability_corners(bits in 0u32..16) {
        let lib = Library::ptm90();
        for (_, cell) in lib.iter() {
            let n = cell.num_pins();
            let v = Vector::new(bits & ((1 << n) - 1), n);
            let corner: Vec<f64> = v.to_bools().iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let p = cell.output_probability(&corner);
            let expected = if cell.eval(&v.to_bools()) { 1.0 } else { 0.0 };
            prop_assert!((p - expected).abs() < 1e-12);
        }
    }

    /// Vector probability is always in [0, 1] for valid pin probabilities.
    #[test]
    fn vector_probability_bounded(
        bits in 0u32..256,
        probs in prop::collection::vec(0.0f64..=1.0, 8),
    ) {
        let v = Vector::new(bits, 8);
        let p = v.probability(&probs);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

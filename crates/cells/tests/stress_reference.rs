//! Cross-validation of the PMOS stress extractor against an independent
//! graph-based switch-level solver.
//!
//! The production extractor ([`relia_cells::Cell::stressed_pmos`]) walks
//! the series/parallel tree with forward/backward driven flags. This test
//! builds the *explicit electrical graph* of the pull-up network instead —
//! real junction nodes, ON devices as edges — floods V_dd through
//! conducting devices with union-find, and declares a PMOS stressed when
//! its gate is low and either terminal sits in the V_dd component. The two
//! implementations must agree on every network and vector.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_cells::{Library, MosType, Network, Vector};

/// Union-find over node ids.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, a: usize) -> usize {
        if self.parent[a] != a {
            let root = self.find(self.parent[a]);
            self.parent[a] = root;
        }
        self.parent[a]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Flattens the tree into explicit devices `(pin, top_node, bottom_node)`.
fn build_graph(
    net: &Network,
    top: usize,
    bottom: usize,
    next_node: &mut usize,
    devices: &mut Vec<(usize, usize, usize)>,
) {
    match net {
        Network::Device(pin) => devices.push((*pin, top, bottom)),
        Network::Parallel(children) => {
            for c in children {
                build_graph(c, top, bottom, next_node, devices);
            }
        }
        Network::Series(children) => {
            let mut upper = top;
            for (i, c) in children.iter().enumerate() {
                let lower = if i == children.len() - 1 {
                    bottom
                } else {
                    let n = *next_node;
                    *next_node += 1;
                    n
                };
                build_graph(c, upper, lower, next_node, devices);
                upper = lower;
            }
        }
    }
}

/// Reference stress computation: explicit graph + rail flooding.
fn reference_stress(net: &Network, inputs: &[bool]) -> Vec<bool> {
    // Node 0 = Vdd rail, node 1 = output.
    let mut next_node = 2usize;
    let mut devices = Vec::new();
    build_graph(net, 0, 1, &mut next_node, &mut devices);

    let mut dsu = Dsu::new(next_node);
    for &(pin, a, b) in &devices {
        if MosType::Pmos.conducts(inputs[pin]) {
            dsu.union(a, b);
        }
    }
    // The output node is at Vdd exactly when the pull-up conducts, which
    // with ideal switches is "output connected to the rail".
    let vdd_root = dsu.find(0);
    devices
        .iter()
        .map(|&(pin, a, b)| {
            let gate_low = !inputs[pin];
            let touches_vdd = dsu.find(a) == vdd_root || dsu.find(b) == vdd_root;
            gate_low && touches_vdd
        })
        .collect()
}

/// Random series/parallel networks over `width` inputs.
fn network(width: usize) -> impl Strategy<Value = Network> {
    let leaf = (0..width).prop_map(Network::Device);
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Network::Series),
            prop::collection::vec(inner, 2..4).prop_map(Network::Parallel),
        ]
    })
}

proptest! {
    /// The tree-walking extractor agrees with the graph-flooding reference
    /// on arbitrary networks and input vectors.
    #[test]
    fn extractor_matches_graph_reference(net in network(5), bits in 0u32..32) {
        let inputs = Vector::new(bits, 5).to_bools();
        let out_high = net.conducts(MosType::Pmos, &inputs);
        let mut tree = Vec::new();
        net.collect_pmos_stress(&inputs, true, out_high, &mut tree);
        let reference = reference_stress(&net, &inputs);
        prop_assert_eq!(tree, reference, "net {:?} inputs {:?}", net, inputs);
    }
}

#[test]
fn catalog_single_stage_cells_match_reference() {
    let lib = Library::ptm90();
    for (_, cell) in lib.iter() {
        if cell.stages().len() != 1 {
            continue; // multi-stage cells compose the same primitive
        }
        let pu = cell.stages()[0].pull_up();
        for v in Vector::all(cell.num_pins()) {
            let inputs = v.to_bools();
            let got = cell.stressed_pmos(&inputs);
            let want = reference_stress(pu, &inputs);
            assert_eq!(got, want, "{} under {v}", cell.name());
        }
    }
}

//! Electrothermal equilibrium: leakage heats the die, heat raises leakage.
//!
//! Standby leakage is exponentially temperature-dependent, and the leakage
//! power itself heats the die — a positive feedback loop that converges for
//! healthy designs and *runs away* when the loop gain exceeds unity. The
//! fixed point matters for the paper's standby analyses: the `T_standby`
//! the NBTI model consumes is itself set by the leakage being optimized.

use relia_core::units::Kelvin;

use crate::rc_model::RcThermalModel;

/// Outcome of the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Equilibrium {
    /// The loop converged to this temperature and total power.
    Stable {
        /// Converged die temperature.
        temp: Kelvin,
        /// Total power (baseline + leakage) at equilibrium, in watts.
        power: f64,
        /// Fixed-point iterations used.
        iterations: usize,
    },
    /// The loop diverged past the runaway guard temperature.
    ThermalRunaway {
        /// Temperature at which the iteration was abandoned.
        reached: Kelvin,
    },
}

/// Guard temperature above which the iteration is declared a runaway.
const RUNAWAY_KELVIN: f64 = 500.0;

/// Finds the electrothermal equilibrium: the die temperature where
/// `T = T_ss(P_base + P_leak(T))`, with `leakage_watts` supplying the
/// temperature-dependent leakage power.
///
/// `leakage_watts` is typically a closure over a
/// `relia_leakage::LeakageTable`-style evaluation times `V_dd`.
///
/// ```
/// use relia_core::Kelvin;
/// use relia_thermal::{electrothermal::{find_equilibrium, Equilibrium}, RcThermalModel};
///
/// let model = RcThermalModel::air_cooled();
/// // A mild exponential leakage: converges.
/// let leak = |t: Kelvin| 0.5 * ((t.0 - 300.0) / 50.0).exp();
/// match find_equilibrium(&model, 20.0, leak) {
///     Equilibrium::Stable { temp, .. } => assert!(temp.0 > model.steady_state(20.0).0),
///     other => panic!("expected stability, got {other:?}"),
/// }
/// ```
pub fn find_equilibrium(
    model: &RcThermalModel,
    baseline_watts: f64,
    leakage_watts: impl Fn(Kelvin) -> f64,
) -> Equilibrium {
    let mut temp = model.steady_state(baseline_watts);
    for iterations in 1..=200 {
        let power = baseline_watts + leakage_watts(temp).max(0.0);
        let next = model.steady_state(power);
        if next.0 > RUNAWAY_KELVIN {
            return Equilibrium::ThermalRunaway { reached: next };
        }
        // Damped update for robust convergence near the stability edge.
        let updated = Kelvin(0.5 * (temp.0 + next.0));
        if (updated.0 - temp.0).abs() < 1e-6 {
            return Equilibrium::Stable {
                temp: updated,
                power,
                iterations,
            };
        }
        temp = updated;
    }
    Equilibrium::ThermalRunaway { reached: temp }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RcThermalModel {
        RcThermalModel::air_cooled()
    }

    #[test]
    fn zero_leakage_is_the_plain_steady_state() {
        let m = model();
        match find_equilibrium(&m, 50.0, |_| 0.0) {
            Equilibrium::Stable { temp, power, .. } => {
                assert!((temp.0 - m.steady_state(50.0).0).abs() < 1e-3);
                assert!((power - 50.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn leakage_raises_the_operating_point() {
        let m = model();
        let leak = |t: Kelvin| 0.2 * ((t.0 - 300.0) / 40.0).exp();
        match find_equilibrium(&m, 40.0, leak) {
            Equilibrium::Stable { temp, power, .. } => {
                assert!(temp > m.steady_state(40.0));
                assert!(power > 40.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggressive_leakage_runs_away() {
        let m = model();
        // Loop gain far above unity: doubles every 10 K.
        let leak = |t: Kelvin| 5.0 * ((t.0 - 300.0) / 14.0).exp();
        assert!(matches!(
            find_equilibrium(&m, 100.0, leak),
            Equilibrium::ThermalRunaway { .. }
        ));
    }

    #[test]
    fn equilibrium_is_a_fixed_point() {
        let m = model();
        let leak = |t: Kelvin| 0.1 * ((t.0 - 300.0) / 30.0).exp();
        if let Equilibrium::Stable { temp, power, .. } = find_equilibrium(&m, 60.0, leak) {
            let recomputed = m.steady_state(power);
            assert!((recomputed.0 - temp.0).abs() < 1e-3);
        } else {
            panic!("expected stability");
        }
    }
}

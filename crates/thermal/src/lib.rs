#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-thermal
//!
//! Lumped-RC thermal model with a typical air-cooling calibration, plus a
//! task-set power-profile generator — the substrate behind the paper's
//! Fig. 2 ("thermal profiles of running a task set on a typical processor",
//! 10–130 W power range mapping to roughly 45–110 °C) and behind the
//! steady-state `T_active`/`T_standby` assumption of the NBTI model.
//!
//! The die temperature follows `C·dT/dt = P − (T − T_amb)/R`, i.e. a
//! first-order exponential approach to the steady state `T_amb + R·P` with
//! time constant `τ = R·C` (milliseconds for a die + spreader under air
//! cooling, which is why the paper treats mode switches as instantaneous
//! temperature switches).
//!
//! ```
//! use relia_thermal::{RcThermalModel, TaskSet};
//!
//! let model = RcThermalModel::air_cooled();
//! // 130 W drives the die to ~110 °C.
//! let hot = model.steady_state(130.0);
//! assert!(hot.to_celsius() > 100.0 && hot.to_celsius() < 120.0);
//! let tasks = TaskSet::random(8, 42);
//! let trace = model.simulate(&tasks.profile(), 1.0e-3);
//! assert!(!trace.is_empty());
//! ```

pub mod electrothermal;
pub mod profile;
pub mod rc_model;

pub use electrothermal::{find_equilibrium, Equilibrium};
pub use profile::{PowerPhase, TaskSet};
pub use rc_model::{RcThermalModel, TracePoint};

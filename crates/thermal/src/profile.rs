//! Task-set power profiles (the paper's Fig. 2 workload: tasks with random
//! power in the 10–130 W range, after the Montecito per-task power spread).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relia_core::units::Seconds;

/// A constant-power phase of a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPhase {
    /// Power in watts.
    pub watts: f64,
    /// Phase duration.
    pub duration: Seconds,
}

/// A sequence of tasks with random power draws.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    phases: Vec<PowerPhase>,
}

impl TaskSet {
    /// Power range of generated tasks, in watts (the paper's Fig. 2 range).
    pub const POWER_RANGE: (f64, f64) = (10.0, 130.0);

    /// Task duration range in seconds.
    pub const DURATION_RANGE: (f64, f64) = (0.05, 0.5);

    /// Generates `tasks` random tasks from a seeded generator.
    ///
    /// ```
    /// use relia_thermal::TaskSet;
    ///
    /// let a = TaskSet::random(5, 1);
    /// let b = TaskSet::random(5, 1);
    /// assert_eq!(a, b); // deterministic per seed
    /// ```
    pub fn random(tasks: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phases = (0..tasks)
            .map(|_| PowerPhase {
                watts: rng.gen_range(Self::POWER_RANGE.0..=Self::POWER_RANGE.1),
                duration: Seconds(rng.gen_range(Self::DURATION_RANGE.0..=Self::DURATION_RANGE.1)),
            })
            .collect();
        TaskSet { phases }
    }

    /// Builds a task set from explicit phases.
    pub fn from_phases(phases: Vec<PowerPhase>) -> Self {
        TaskSet { phases }
    }

    /// The power profile, one phase per task.
    pub fn profile(&self) -> &[PowerPhase] {
        &self.phases
    }

    /// Total duration across all phases.
    pub fn total_duration(&self) -> Seconds {
        Seconds(self.phases.iter().map(|p| p.duration.0).sum())
    }

    /// An alternating active/standby duty profile: `cycles` repetitions of
    /// (active power for `t_active`, standby power for `t_standby`) — the
    /// mode pattern the NBTI schedule abstracts.
    pub fn duty_cycle(
        active_watts: f64,
        standby_watts: f64,
        t_active: Seconds,
        t_standby: Seconds,
        cycles: usize,
    ) -> Self {
        let mut phases = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            phases.push(PowerPhase {
                watts: active_watts,
                duration: t_active,
            });
            phases.push(PowerPhase {
                watts: standby_watts,
                duration: t_standby,
            });
        }
        TaskSet { phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tasks_stay_in_range() {
        let set = TaskSet::random(50, 7);
        for p in set.profile() {
            assert!(p.watts >= 10.0 && p.watts <= 130.0);
            assert!(p.duration.0 >= 0.05 && p.duration.0 <= 0.5);
        }
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(TaskSet::random(5, 1), TaskSet::random(5, 2));
    }

    #[test]
    fn duty_cycle_shape() {
        let set = TaskSet::duty_cycle(110.0, 15.0, Seconds(0.1), Seconds(0.9), 3);
        assert_eq!(set.profile().len(), 6);
        assert!((set.total_duration().0 - 3.0).abs() < 1e-12);
        assert_eq!(set.profile()[0].watts, 110.0);
        assert_eq!(set.profile()[1].watts, 15.0);
    }

    #[test]
    fn total_duration_sums() {
        let set = TaskSet::from_phases(vec![
            PowerPhase {
                watts: 50.0,
                duration: Seconds(0.25),
            },
            PowerPhase {
                watts: 70.0,
                duration: Seconds(0.75),
            },
        ]);
        assert!((set.total_duration().0 - 1.0).abs() < 1e-12);
    }
}

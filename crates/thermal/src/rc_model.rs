//! The lumped-RC die thermal model.

use relia_core::units::Kelvin;
#[cfg(test)]
use relia_core::units::Seconds;

use crate::profile::PowerPhase;

/// One sample of a simulated temperature trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Elapsed time in seconds.
    pub time: f64,
    /// Instantaneous power in watts.
    pub power: f64,
    /// Die temperature.
    pub temp: Kelvin,
}

/// First-order lumped-RC thermal model:
/// `C·dT/dt = P − (T − T_amb)/R`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcThermalModel {
    /// Junction-to-ambient thermal resistance in K/W.
    pub r_th: f64,
    /// Lumped thermal capacitance in J/K.
    pub c_th: f64,
    /// Ambient (enclosure) temperature.
    pub ambient: Kelvin,
}

impl RcThermalModel {
    /// A typical air-cooled calibration: 40 °C enclosure, 0.55 K/W to
    /// ambient, ~10 ms thermal time constant — reproducing the paper's
    /// 10–130 W → ~45–110 °C mapping and its "temperature converges in
    /// milliseconds" assumption.
    pub fn air_cooled() -> Self {
        RcThermalModel {
            r_th: 0.55,
            c_th: 0.0182,
            ambient: Kelvin::from_celsius(40.0),
        }
    }

    /// Thermal time constant `τ = R·C` in seconds.
    pub fn time_constant(&self) -> f64 {
        self.r_th * self.c_th
    }

    /// Steady-state die temperature at constant power `watts`.
    pub fn steady_state(&self, watts: f64) -> Kelvin {
        Kelvin(self.ambient.0 + self.r_th * watts.max(0.0))
    }

    /// Advances the die temperature by `dt` seconds at constant power
    /// (exact exponential update of the first-order ODE).
    pub fn step(&self, temp: Kelvin, watts: f64, dt: f64) -> Kelvin {
        let t_ss = self.steady_state(watts).0;
        Kelvin(t_ss + (temp.0 - t_ss) * (-dt / self.time_constant()).exp())
    }

    /// Simulates a power profile, sampling every `dt` seconds. The die
    /// starts at the steady state of the first phase's power, matching a
    /// processor that has been running the first task for a while.
    pub fn simulate(&self, profile: &[PowerPhase], dt: f64) -> Vec<TracePoint> {
        assert!(dt > 0.0, "sampling step must be positive");
        let mut trace = Vec::new();
        let Some(first) = profile.first() else {
            return trace;
        };
        let mut temp = self.steady_state(first.watts);
        let mut now = 0.0;
        for phase in profile {
            let steps = (phase.duration.0 / dt).ceil() as usize;
            for _ in 0..steps.max(1) {
                temp = self.step(temp, phase.watts, dt);
                now += dt;
                trace.push(TracePoint {
                    time: now,
                    power: phase.watts,
                    temp,
                });
            }
        }
        trace
    }

    /// Steady-state active/standby temperature pair for the given mode
    /// powers — the `T_active`/`T_standby` inputs of the NBTI model.
    pub fn mode_temperatures(&self, active_watts: f64, standby_watts: f64) -> (Kelvin, Kelvin) {
        (
            self.steady_state(active_watts),
            self.steady_state(standby_watts),
        )
    }
}

impl Default for RcThermalModel {
    fn default() -> Self {
        RcThermalModel::air_cooled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_range_matches_paper() {
        let m = RcThermalModel::air_cooled();
        let lo = m.steady_state(10.0).to_celsius();
        let hi = m.steady_state(130.0).to_celsius();
        assert!(lo > 40.0 && lo < 60.0, "low-power temp {lo} C");
        assert!(hi > 100.0 && hi < 120.0, "high-power temp {hi} C");
    }

    #[test]
    fn convergence_is_milliseconds() {
        let m = RcThermalModel::air_cooled();
        assert!(m.time_constant() > 1e-3 && m.time_constant() < 0.1);
        // After 5 time constants the die is within 1% of steady state.
        let t0 = m.steady_state(10.0);
        let t = m.step(t0, 130.0, 5.0 * m.time_constant());
        let t_ss = m.steady_state(130.0);
        assert!((t.0 - t_ss.0).abs() / (t_ss.0 - t0.0) < 0.01);
    }

    #[test]
    fn step_moves_toward_steady_state() {
        let m = RcThermalModel::air_cooled();
        let cold = m.steady_state(10.0);
        let warmer = m.step(cold, 100.0, 1e-3);
        assert!(warmer > cold);
        let hot = m.steady_state(130.0);
        let cooler = m.step(hot, 10.0, 1e-3);
        assert!(cooler < hot);
    }

    #[test]
    fn zero_power_rests_at_ambient() {
        let m = RcThermalModel::air_cooled();
        assert_eq!(m.steady_state(0.0), m.ambient);
        assert_eq!(m.steady_state(-5.0), m.ambient);
    }

    #[test]
    fn simulate_tracks_phases() {
        let m = RcThermalModel::air_cooled();
        let profile = [
            PowerPhase {
                watts: 20.0,
                duration: Seconds(0.2),
            },
            PowerPhase {
                watts: 120.0,
                duration: Seconds(0.2),
            },
        ];
        let trace = m.simulate(&profile, 1e-3);
        let first = trace.first().unwrap();
        let last = trace.last().unwrap();
        assert!(last.temp > first.temp);
        // End of the hot phase is near its steady state.
        assert!((last.temp.0 - m.steady_state(120.0).0).abs() < 0.5);
    }

    #[test]
    fn empty_profile_is_empty_trace() {
        let m = RcThermalModel::air_cooled();
        assert!(m.simulate(&[], 1e-3).is_empty());
    }

    #[test]
    fn mode_temperatures_are_ordered() {
        let m = RcThermalModel::air_cooled();
        let (a, s) = m.mode_temperatures(110.0, 15.0);
        assert!(a > s);
    }
}

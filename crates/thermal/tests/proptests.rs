//! Property-based tests for the thermal model.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_core::units::Kelvin;
use relia_thermal::{PowerPhase, RcThermalModel, TaskSet};

proptest! {
    /// Steady state is affine in power and never below ambient.
    #[test]
    fn steady_state_affine(p1 in 0.0f64..200.0, p2 in 0.0f64..200.0) {
        let m = RcThermalModel::air_cooled();
        let t1 = m.steady_state(p1).0;
        let t2 = m.steady_state(p2).0;
        prop_assert!(t1 >= m.ambient.0);
        prop_assert!(((t2 - t1) - m.r_th * (p2 - p1)).abs() < 1e-9);
    }

    /// A step never overshoots: the new temperature lies between the old
    /// temperature and the steady state.
    #[test]
    fn step_never_overshoots(
        t0 in 300.0f64..420.0,
        power in 0.0f64..200.0,
        dt in 1e-5f64..1.0,
    ) {
        let m = RcThermalModel::air_cooled();
        let t_ss = m.steady_state(power).0;
        let t1 = m.step(Kelvin(t0), power, dt).0;
        let lo = t0.min(t_ss) - 1e-9;
        let hi = t0.max(t_ss) + 1e-9;
        prop_assert!(t1 >= lo && t1 <= hi, "{t0} -> {t1} (ss {t_ss})");
    }

    /// Simulated traces stay within the envelope of the phase steady
    /// states (plus the initial condition).
    #[test]
    fn trace_stays_in_envelope(
        powers in prop::collection::vec(10.0f64..130.0, 1..6),
    ) {
        let m = RcThermalModel::air_cooled();
        let phases: Vec<PowerPhase> = powers
            .iter()
            .map(|&watts| PowerPhase { watts, duration: relia_core::Seconds(0.05) })
            .collect();
        let trace = m.simulate(TaskSet::from_phases(phases.clone()).profile(), 1e-3);
        let lo = phases.iter().map(|p| m.steady_state(p.watts).0).fold(f64::MAX, f64::min);
        let hi = phases.iter().map(|p| m.steady_state(p.watts).0).fold(f64::MIN, f64::max);
        for pt in trace {
            prop_assert!(pt.temp.0 >= lo - 1e-9 && pt.temp.0 <= hi + 1e-9);
        }
    }
}

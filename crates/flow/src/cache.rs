//! Pluggable memoization of NBTI model evaluations.
//!
//! Batch sweeps (the `relia-jobs` crate) evaluate the same quantized stress
//! points over and over — every gate whose worst PMOS sees the same signal
//! probability under the same schedule lands on the same [`StressKey`]. The
//! [`DeltaVthCache`] trait lets the analysis loop consult a shared memo
//! table without this crate depending on any particular cache
//! implementation (or on a threading model).
//!
//! Implementations must be *scheduling-deterministic*: the contract is that
//! the returned value equals `key.evaluate(model)` exactly, which holds for
//! free when the implementation itself calls [`StressKey::evaluate`] on a
//! miss and stores the result, because the evaluation is a pure function of
//! the key.

use relia_core::{ModelError, NbtiModel, StressKey};

/// A memo table for `ΔV_th` keyed by quantized stress points.
pub trait DeltaVthCache {
    /// Returns `key.evaluate(model)`, possibly from a memo table.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the canonical evaluation fails (the
    /// cache must not memoize errors as successes).
    fn delta_vth(&self, key: StressKey, model: &NbtiModel) -> Result<f64, ModelError>;
}

/// The trivial cache: always evaluates.
///
/// Used by the uncached analysis entry points so cached and uncached code
/// paths share one implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl DeltaVthCache for NoCache {
    fn delta_vth(&self, key: StressKey, model: &NbtiModel) -> Result<f64, ModelError> {
        key.evaluate(model)
    }
}

impl<C: DeltaVthCache + ?Sized> DeltaVthCache for &C {
    fn delta_vth(&self, key: StressKey, model: &NbtiModel) -> Result<f64, ModelError> {
        (**self).delta_vth(key, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_core::{Kelvin, ModeSchedule, PmosStress, Ras, Seconds};

    #[test]
    fn no_cache_matches_canonical_evaluation() {
        let model = NbtiModel::ptm90().unwrap();
        let schedule = ModeSchedule::new(
            Ras::new(1.0, 9.0).unwrap(),
            Seconds(1000.0),
            Kelvin(400.0),
            Kelvin(330.0),
        )
        .unwrap();
        let key = StressKey::quantize(&schedule, &PmosStress::worst_case(), Seconds(1.0e8));
        let direct = key.evaluate(&model).unwrap();
        let cached = NoCache.delta_vth(key, &model).unwrap();
        assert_eq!(direct, cached);
    }
}

//! Error type for the analysis platform.

use std::error::Error;
use std::fmt;

use relia_core::ModelError;
use relia_sim::SimError;
use relia_sta::StaError;

/// Error returned by the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The NBTI model rejected a parameter or stress description.
    Model(ModelError),
    /// Simulation failed (stimulus width, probabilities).
    Sim(SimError),
    /// Timing analysis failed.
    Sta(StaError),
    /// A standby vector has the wrong width.
    StandbyVectorWidth {
        /// Primary inputs the circuit has.
        expected: usize,
        /// Vector bits supplied.
        got: usize,
    },
    /// A per-gate array has the wrong length.
    GateVectorWidth {
        /// Gates in the circuit.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// A scalar parameter is out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The analysis was cancelled cooperatively (a watchdog deadline
    /// expired and the [`CancelToken`](relia_core::CancelToken) was set).
    Cancelled,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Model(e) => write!(f, "nbti model: {e}"),
            FlowError::Sim(e) => write!(f, "simulation: {e}"),
            FlowError::Sta(e) => write!(f, "timing: {e}"),
            FlowError::StandbyVectorWidth { expected, got } => {
                write!(
                    f,
                    "standby vector has {got} bits but circuit has {expected} inputs"
                )
            }
            FlowError::GateVectorWidth { expected, got } => {
                write!(
                    f,
                    "per-gate array has {got} entries but circuit has {expected} gates"
                )
            }
            FlowError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            FlowError::Cancelled => write!(f, "analysis cancelled by watchdog deadline"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Model(e) => Some(e),
            FlowError::Sim(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for FlowError {
    fn from(e: ModelError) -> Self {
        FlowError::Model(e)
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

impl From<StaError> for FlowError {
    fn from(e: StaError) -> Self {
        FlowError::Sta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap() {
        let e: FlowError = SimError::NoSamples.into();
        assert!(matches!(e, FlowError::Sim(_)));
        assert!(e.to_string().contains("simulation"));
    }
}

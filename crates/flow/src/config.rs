//! Flow configuration: the knobs of the paper's experiments.

use relia_core::{
    Kelvin, ModeSchedule, ModelError, NbtiModel, PmosStress, Ras, Seconds, StressKey,
};
use relia_leakage::DeviceModels;

/// How active-mode signal probabilities are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpEstimator {
    /// Exact per-cell propagation under the independence assumption —
    /// fast, but ignores reconvergent-fan-out correlation.
    Propagation,
    /// Seeded random-vector simulation (the statistical route the paper
    /// describes) — unbiased, correlation-aware, sampling noise
    /// `~1/sqrt(samples)`.
    MonteCarlo {
        /// Vectors to simulate.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Configuration of one aging/leakage analysis.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The temperature-aware NBTI calibration.
    pub nbti: NbtiModel,
    /// Active/standby schedule (RAS and the two steady-state temperatures).
    pub schedule: ModeSchedule,
    /// Total operating time over which degradation accumulates.
    pub lifetime: Seconds,
    /// Leakage device models.
    pub devices: DeviceModels,
    /// Per-primary-input probability of logic 1 during active operation
    /// (`None` = uniform 0.5, the paper's default).
    pub input_probs: Option<Vec<f64>>,
    /// Temperature at which standby leakage is evaluated (the paper uses
    /// 400 K for its leakage tables).
    pub leakage_temp: Kelvin,
    /// Signal-probability estimator for the active mode.
    pub sp_estimator: SpEstimator,
}

impl FlowConfig {
    /// The paper's baseline: 10^8 s lifetime, `T_active = 400 K`,
    /// `T_standby = 330 K`, RAS = 1:9, uniform 0.5 input probabilities,
    /// leakage tables at 400 K.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; mirrors the fallible
    /// constructors it is built from.
    pub fn paper_defaults() -> Result<Self, ModelError> {
        Ok(FlowConfig {
            nbti: NbtiModel::ptm90()?,
            schedule: ModeSchedule::new(
                Ras::new(1.0, 9.0)?,
                Seconds(1000.0),
                Kelvin(400.0),
                Kelvin(330.0),
            )?,
            lifetime: Seconds(1.0e8),
            devices: DeviceModels::ptm90(),
            input_probs: None,
            leakage_temp: Kelvin(400.0),
            sp_estimator: SpEstimator::Propagation,
        })
    }

    /// Same defaults with a different active/standby ratio and standby
    /// temperature — the axes the paper sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid ratio or temperature.
    pub fn with_schedule(ras: Ras, temp_standby: Kelvin) -> Result<Self, ModelError> {
        let mut c = FlowConfig::paper_defaults()?;
        c.schedule = ModeSchedule::new(ras, Seconds(1000.0), Kelvin(400.0), temp_standby)?;
        Ok(c)
    }

    /// The quantized memoization key of one stress evaluation under this
    /// config's schedule — the cache-key contract between the analysis loop
    /// and sweep-level caches (see [`crate::cache::DeltaVthCache`]).
    pub fn stress_key(&self, stress: &PmosStress, lifetime: Seconds) -> StressKey {
        StressKey::quantize(&self.schedule, stress, lifetime)
    }

    /// Resolved per-input probabilities for a circuit with `n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if explicit probabilities were supplied with the wrong width;
    /// validated by [`crate::AgingAnalysis::new`] before use.
    pub(crate) fn resolved_input_probs(&self, n: usize) -> Vec<f64> {
        match &self.input_probs {
            Some(p) => {
                assert_eq!(p.len(), n, "input_probs width mismatch");
                p.clone()
            }
            None => vec![0.5; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FlowConfig::paper_defaults().unwrap();
        assert_eq!(c.lifetime.0, 1.0e8);
        assert_eq!(c.schedule.temp_active(), Kelvin(400.0));
        assert_eq!(c.schedule.temp_standby(), Kelvin(330.0));
        assert!((c.schedule.t_standby().0 / c.schedule.t_active().0 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn with_schedule_overrides() {
        let c = FlowConfig::with_schedule(Ras::new(1.0, 5.0).unwrap(), Kelvin(370.0)).unwrap();
        assert_eq!(c.schedule.temp_standby(), Kelvin(370.0));
    }

    #[test]
    fn resolved_probs_default_to_half() {
        let c = FlowConfig::paper_defaults().unwrap();
        assert_eq!(c.resolved_input_probs(3), vec![0.5; 3]);
    }
}

//! Statistical aging under process variation (the paper's Fig. 12 study).
//!
//! Each Monte-Carlo sample draws a per-gate initial threshold
//! `V_th0 ~ N(mean, σ²)`. A low-threshold gate is faster at time zero but
//! degrades faster (eq. 23's overdrive dependence), so over the lifetime the
//! delay distribution's mean grows while its variance *shrinks* — the
//! variance-compression effect reported by Wang et al. (CICC'08) that the
//! paper cites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relia_core::variation::SampleStats;
use relia_core::{Seconds, VariationKernel, Volts, VthDistribution};
use relia_sta::TimingAnalysis;

use crate::analysis::AgingAnalysis;
use crate::error::FlowError;
use crate::policy::StandbyPolicy;

/// Configuration of the Monte-Carlo variation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// The per-gate initial-threshold distribution.
    pub dist: VthDistribution,
    /// Monte-Carlo sample count.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl VariationConfig {
    /// The paper's Fig. 12 setup: `V_th0 ~ N(220 mV, (10 mV)²)`.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn paper_defaults() -> Result<Self, relia_core::ModelError> {
        Ok(VariationConfig {
            dist: VthDistribution::new(Volts(0.22), Volts(0.010))?,
            samples: 500,
            seed: 0x00F1_612A,
        })
    }
}

/// Delay statistics at one evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Operating time at which the circuit was evaluated.
    pub time: Seconds,
    /// Distribution of the circuit's maximum delay across samples, in ps.
    pub delay: SampleStats,
}

/// The Monte-Carlo variation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VariationStudy;

impl VariationStudy {
    /// Runs the study: for each time point, samples per-gate thresholds and
    /// reports the distribution of the aged critical-path delay.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] on malformed policies or model failures.
    pub fn run(
        analysis: &AgingAnalysis<'_>,
        policy: &StandbyPolicy,
        var: &VariationConfig,
        times: &[Seconds],
    ) -> Result<Vec<VariationPoint>, FlowError> {
        let circuit = analysis.circuit();
        let kernel = VariationKernel::new(analysis.config().nbti.params());
        let num_gates = circuit.gates().len();

        // Policy-dependent base shifts at each time, for the nominal
        // threshold; per-sample shifts are the base scaled by eq. 23.
        let base_shifts: Vec<Vec<f64>> = times
            .iter()
            .map(|&t| analysis.gate_delta_vth_at(policy, t))
            .collect::<Result<_, _>>()?;
        let nominal_delays = relia_sta::nominal_gate_delays(circuit);

        // Structure-of-arrays sample buffers, reused across samples; the
        // batch kernel evaluates whole gate vectors at once.
        let mut vth0 = vec![0.0; num_gates];
        let mut fresh = vec![0.0; num_gates];
        let mut aged = vec![0.0; num_gates];

        let mut rng = StdRng::seed_from_u64(var.seed);
        let mut per_time: Vec<Vec<f64>> = vec![Vec::with_capacity(var.samples); times.len()];
        for _ in 0..var.samples {
            // Draw per-gate thresholds (sample-major, gate-minor — the
            // variate order every earlier release used).
            for v in vth0.iter_mut() {
                *v = var
                    .dist
                    .sample_box_muller(rng.gen::<f64>(), rng.gen::<f64>())
                    .0;
            }
            // Time-zero delays scale with the overdrive (alpha-power law).
            kernel.fresh_delays_into(&nominal_delays, &vth0, &mut fresh);
            for (ti, base) in base_shifts.iter().enumerate() {
                kernel.aged_delays_into(&fresh, base, &vth0, &mut aged);
                let report = TimingAnalysis::with_delays(circuit, aged.clone())?;
                per_time[ti].push(report.max_delay_ps());
            }
        }

        times
            .iter()
            .zip(per_time)
            .map(|(&time, delays)| {
                let delay =
                    SampleStats::from_values(&delays).ok_or(FlowError::InvalidParameter {
                        name: "variation.samples",
                        value: 0.0,
                    })?;
                Ok(VariationPoint { time, delay })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use relia_netlist::iscas;

    #[test]
    fn mean_grows_and_variance_compresses() {
        let config = FlowConfig::paper_defaults().unwrap();
        let circuit = iscas::circuit("c432").unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let var = VariationConfig {
            samples: 120,
            ..VariationConfig::paper_defaults().unwrap()
        };
        let times = [Seconds(0.0), Seconds(1.0e8)];
        let pts =
            VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times).unwrap();
        assert_eq!(pts.len(), 2);
        assert!(pts[1].delay.mean > pts[0].delay.mean, "mean must grow");
        assert!(
            pts[1].delay.std_dev < pts[0].delay.std_dev,
            "variance must compress: {} vs {}",
            pts[1].delay.std_dev,
            pts[0].delay.std_dev
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let config = FlowConfig::paper_defaults().unwrap();
        let circuit = iscas::c17();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let var = VariationConfig {
            samples: 50,
            ..VariationConfig::paper_defaults().unwrap()
        };
        let times = [Seconds(1.0e7)];
        let a =
            VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times).unwrap();
        let b =
            VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times).unwrap();
        assert_eq!(a, b);
    }
}

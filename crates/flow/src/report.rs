//! Tabular export of aging reports for downstream toolchains.

use relia_netlist::Circuit;
use std::fmt::Write as _;

use crate::analysis::AgingReport;

/// Renders a per-gate CSV of the aging analysis:
/// `gate,cell,level,delta_vth_mv,nominal_ps,aged_ps,slack_ps`.
///
/// The slack column is against the *aged* circuit's maximum delay, so
/// zero-slack rows are the gates that set the end-of-life frequency.
///
/// ```
/// use relia_flow::{report::to_csv, AgingAnalysis, FlowConfig, StandbyPolicy};
/// use relia_netlist::iscas;
///
/// # fn main() -> Result<(), relia_flow::FlowError> {
/// let circuit = iscas::c17();
/// let config = FlowConfig::paper_defaults()?;
/// let analysis = AgingAnalysis::new(&config, &circuit)?;
/// let report = analysis.run(&StandbyPolicy::AllInternalZero)?;
/// let csv = to_csv(&circuit, &report);
/// assert!(csv.starts_with("gate,cell,level,"));
/// assert_eq!(csv.lines().count(), 1 + circuit.gates().len());
/// # Ok(())
/// # }
/// ```
pub fn to_csv(circuit: &Circuit, report: &AgingReport) -> String {
    let mut out = String::from("gate,cell,level,delta_vth_mv,nominal_ps,aged_ps,slack_ps\n");
    let aged_slacks = report.degraded.slacks(circuit);
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let cell = circuit.library().cell(gate.cell());
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{:.3},{:.3}",
            gate.name(),
            cell.name(),
            circuit.gate_level(gid),
            report.gate_delta_vth[gid.index()] * 1e3,
            report.nominal.gate_delays()[gid.index()],
            report.degraded.gate_delays()[gid.index()],
            aged_slacks[gate.output().index()],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AgingAnalysis;
    use crate::config::FlowConfig;
    use crate::policy::StandbyPolicy;
    use relia_netlist::iscas;

    #[test]
    fn csv_is_well_formed_and_complete() {
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let report = analysis.run(&StandbyPolicy::AllInternalZero).unwrap();
        let csv = to_csv(&circuit, &report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + circuit.gates().len());
        let columns = lines[0].split(',').count();
        for (i, line) in lines.iter().enumerate().skip(1) {
            assert_eq!(line.split(',').count(), columns, "row {i}");
        }
        // At least one gate has zero aged slack (it sets the max delay).
        let zero_slack = lines.iter().skip(1).any(|l| {
            l.rsplit(',')
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|s| s.abs() < 1e-3)
                .unwrap_or(false)
        });
        assert!(zero_slack);
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-flow
//!
//! The NBTI/leakage analysis and optimization platform — the paper's Fig. 6
//! flow. Given a netlist, a cell library, an NBTI calibration, and an
//! active/standby schedule, the platform:
//!
//! 1. propagates active-mode signal probabilities (exact independence model
//!    or Monte Carlo);
//! 2. resolves standby internal states from a [`StandbyPolicy`] (an input
//!    vector, an idealized internal-node assignment, or power gating);
//! 3. computes the temperature-aware per-PMOS threshold shift over the
//!    lifetime and reduces it to a per-gate worst shift;
//! 4. runs static timing with nominal and degraded delays;
//! 5. evaluates active and standby leakage through the lookup tables.
//!
//! ```
//! use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
//! use relia_netlist::iscas;
//!
//! # fn main() -> Result<(), relia_flow::FlowError> {
//! let circuit = iscas::c17();
//! let config = FlowConfig::paper_defaults()?;
//! let report = AgingAnalysis::new(&config, &circuit)?
//!     .run(&StandbyPolicy::AllInternalZero)?;
//! assert!(report.degradation_fraction() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod cache;
pub mod config;
pub mod dual_vth;
pub mod error;
pub mod lifetime;
pub mod policy;
pub mod report;
pub mod variation;

pub use analysis::{AgingAnalysis, AgingReport, AnalysisPrep};
pub use cache::{DeltaVthCache, NoCache};
pub use config::{FlowConfig, SpEstimator};
pub use dual_vth::{assign_dual_vth, DualVthResult};
pub use error::FlowError;
pub use lifetime::{lifetime_to_budget, LifetimeBudget};
pub use policy::StandbyPolicy;
pub use relia_core::CancelToken;
pub use variation::{VariationConfig, VariationStudy};

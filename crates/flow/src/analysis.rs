//! The aging analysis proper: per-PMOS stress → ΔV_th → degraded timing +
//! leakage.

use relia_cells::Vector;
use relia_core::{CancelToken, PmosStress};
use relia_leakage::{circuit_leakage, expected_circuit_leakage, LeakageTable};
use relia_netlist::Circuit;
use relia_sim::{logic, prob, SignalProbs};
use relia_sta::{TimingAnalysis, TimingReport};

use crate::cache::DeltaVthCache;
#[cfg(doc)]
use crate::cache::NoCache;
use crate::config::{FlowConfig, SpEstimator};
use crate::error::FlowError;
use crate::policy::StandbyPolicy;

/// The schedule-independent half of an aging analysis: signal
/// probabilities, per-PMOS active-mode stress duty cycles, and the leakage
/// table.
///
/// These quantities depend on the circuit and on the probability/leakage
/// configuration (`input_probs`, `sp_estimator`, `devices`,
/// `leakage_temp`) but **not** on the operating schedule or lifetime, so a
/// batch sweep that varies only RAS, standby temperature, or lifetime can
/// compute one `AnalysisPrep` per circuit and share it — cloning is cheap
/// relative to rebuilding — across every job via
/// [`AgingAnalysis::from_prep`].
#[derive(Debug, Clone)]
pub struct AnalysisPrep {
    probs: SignalProbs,
    /// Active-mode stress probability of every PMOS, grouped per gate.
    active_stress: Vec<Vec<f64>>,
    table: LeakageTable,
}

/// A prepared analysis over one circuit: signal probabilities and leakage
/// tables are computed once and reused across standby policies (the
/// expensive, policy-independent half of the flow).
#[derive(Debug, Clone)]
pub struct AgingAnalysis<'a> {
    config: &'a FlowConfig,
    circuit: &'a Circuit,
    prep: AnalysisPrep,
}

impl<'a> AgingAnalysis<'a> {
    /// Prepares the analysis: propagates signal probabilities, derives each
    /// PMOS device's active-mode stress duty cycle, and builds the leakage
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for invalid input probabilities.
    pub fn new(config: &'a FlowConfig, circuit: &'a Circuit) -> Result<Self, FlowError> {
        let prep = AgingAnalysis::prep(config, circuit)?;
        Ok(AgingAnalysis::from_prep(config, circuit, prep))
    }

    /// Computes the schedule-independent preparation alone, for reuse
    /// across configs that differ only in schedule and/or lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for invalid input probabilities.
    pub fn prep(config: &FlowConfig, circuit: &Circuit) -> Result<AnalysisPrep, FlowError> {
        let n = circuit.primary_inputs().len();
        if let Some(p) = &config.input_probs {
            if p.len() != n {
                return Err(FlowError::StandbyVectorWidth {
                    expected: n,
                    got: p.len(),
                });
            }
        }
        let pi_probs = config.resolved_input_probs(n);
        let probs = match config.sp_estimator {
            SpEstimator::Propagation => prob::propagate(circuit, &pi_probs)?,
            SpEstimator::MonteCarlo { samples, seed } => {
                relia_sim::monte_carlo::estimate(circuit, &pi_probs, samples, seed)?
                    .probs()
                    .clone()
            }
        };
        let active_stress = circuit
            .gates()
            .iter()
            .map(|gate| {
                let pin_probs: Vec<f64> = gate.inputs().iter().map(|&net| probs.of(net)).collect();
                circuit
                    .library()
                    .cell(gate.cell())
                    .stress_probabilities(&pin_probs)
            })
            .collect();
        let table = LeakageTable::build(circuit.library(), &config.devices, config.leakage_temp);
        Ok(AnalysisPrep {
            probs,
            active_stress,
            table,
        })
    }

    /// Assembles an analysis from a precomputed [`AnalysisPrep`].
    ///
    /// The prep must have been built for the same `circuit` and for a
    /// config agreeing with this one on `input_probs`, `sp_estimator`,
    /// `devices`, and `leakage_temp`; schedule and lifetime are free to
    /// differ (they are exactly what batch sweeps vary per job).
    pub fn from_prep(config: &'a FlowConfig, circuit: &'a Circuit, prep: AnalysisPrep) -> Self {
        AgingAnalysis {
            config,
            circuit,
            prep,
        }
    }

    /// The propagated active-mode signal probabilities.
    pub fn signal_probs(&self) -> &SignalProbs {
        &self.prep.probs
    }

    /// The leakage lookup table in use.
    pub fn leakage_table(&self) -> &LeakageTable {
        &self.prep.table
    }

    /// Per-gate worst-case PMOS ΔV_th (volts) after the configured lifetime
    /// under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for a malformed standby vector.
    pub fn gate_delta_vth(&self, policy: &StandbyPolicy) -> Result<Vec<f64>, FlowError> {
        self.gate_delta_vth_at(policy, self.config.lifetime)
    }

    /// Per-gate worst-case PMOS ΔV_th after an explicit operating time
    /// (used by time sweeps and the variation study).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for a malformed standby vector.
    pub fn gate_delta_vth_at(
        &self,
        policy: &StandbyPolicy,
        lifetime: relia_core::Seconds,
    ) -> Result<Vec<f64>, FlowError> {
        let standby_flags = self.standby_stress_flags(policy)?;
        let mut out = Vec::with_capacity(self.circuit.gates().len());
        for (gi, active) in self.prep.active_stress.iter().enumerate() {
            let standby = &standby_flags[gi];
            let mut worst: f64 = 0.0;
            for (pi, &p_active) in active.iter().enumerate() {
                let p_standby = if standby[pi] { 1.0 } else { 0.0 };
                let stress = PmosStress::new(p_active, p_standby)?;
                let dv = self
                    .config
                    .nbti
                    .delta_vth(lifetime, &self.config.schedule, &stress)?;
                worst = worst.max(dv);
            }
            out.push(worst);
        }
        Ok(out)
    }

    /// Like [`AgingAnalysis::gate_delta_vth_at`], but consulting a
    /// [`DeltaVthCache`] so repeated stress points are evaluated once.
    ///
    /// Model evaluations go through [`relia_core::StressKey`]: each
    /// (schedule, stress, lifetime) point is quantized and evaluated at the
    /// key's canonical point, so results are a pure function of the key and
    /// identical whether the cache is shared across threads, private, or
    /// [`NoCache`]. The quantization perturbs ΔV_th by parts in 1e10
    /// relative to the direct [`AgingAnalysis::gate_delta_vth_at`] path.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for a malformed standby vector.
    pub fn gate_delta_vth_at_cached<C: DeltaVthCache>(
        &self,
        policy: &StandbyPolicy,
        lifetime: relia_core::Seconds,
        cache: &C,
    ) -> Result<Vec<f64>, FlowError> {
        self.gate_delta_vth_at_cached_cancellable(policy, lifetime, cache, &CancelToken::new())
    }

    /// Like [`AgingAnalysis::gate_delta_vth_at_cached`], but polling a
    /// cooperative [`CancelToken`] at every gate boundary: when a watchdog
    /// sets the token, the loop abandons the remaining gates and returns
    /// [`FlowError::Cancelled`] instead of running to completion. Partial
    /// results are discarded, so cancellation can never leak a truncated
    /// ΔV_th vector into a report.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] once `cancel` is set, or the usual
    /// [`FlowError`]s for malformed standby vectors.
    pub fn gate_delta_vth_at_cached_cancellable<C: DeltaVthCache>(
        &self,
        policy: &StandbyPolicy,
        lifetime: relia_core::Seconds,
        cache: &C,
        cancel: &CancelToken,
    ) -> Result<Vec<f64>, FlowError> {
        let standby_flags = self.standby_stress_flags(policy)?;
        let mut out = Vec::with_capacity(self.circuit.gates().len());
        for (gi, active) in self.prep.active_stress.iter().enumerate() {
            if cancel.is_cancelled() {
                return Err(FlowError::Cancelled);
            }
            let standby = &standby_flags[gi];
            let mut worst: f64 = 0.0;
            for (pi, &p_active) in active.iter().enumerate() {
                let p_standby = if standby[pi] { 1.0 } else { 0.0 };
                let stress = PmosStress::new(p_active, p_standby)?;
                let key = self.config.stress_key(&stress, lifetime);
                let dv = cache.delta_vth(key, &self.config.nbti)?;
                worst = worst.max(dv);
            }
            out.push(worst);
        }
        Ok(out)
    }

    /// Per-gate worst-case PMOS ΔV_th when each PMOS has a *fractional*
    /// standby stress probability (e.g. an alternating-IVC rotation that
    /// parks the circuit on different vectors over time).
    /// `standby_probs[g][p]` is the probability that PMOS `p` of gate `g`
    /// is stressed during standby.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::GateVectorWidth`] for a malformed probability
    /// array, or model errors for probabilities outside `[0, 1]`.
    pub fn gate_delta_vth_with_standby_probs(
        &self,
        standby_probs: &[Vec<f64>],
    ) -> Result<Vec<f64>, FlowError> {
        if standby_probs.len() != self.circuit.gates().len() {
            return Err(FlowError::GateVectorWidth {
                expected: self.circuit.gates().len(),
                got: standby_probs.len(),
            });
        }
        let mut out = Vec::with_capacity(self.circuit.gates().len());
        for (gi, active) in self.prep.active_stress.iter().enumerate() {
            if standby_probs[gi].len() != active.len() {
                return Err(FlowError::GateVectorWidth {
                    expected: active.len(),
                    got: standby_probs[gi].len(),
                });
            }
            let mut worst: f64 = 0.0;
            for (pi, &p_active) in active.iter().enumerate() {
                let stress = PmosStress::new(p_active, standby_probs[gi][pi])?;
                let dv = self.config.nbti.delta_vth(
                    self.config.lifetime,
                    &self.config.schedule,
                    &stress,
                )?;
                worst = worst.max(dv);
            }
            out.push(worst);
        }
        Ok(out)
    }

    /// Standby stress flags (one `bool` per PMOS, grouped per gate) for the
    /// circuit frozen at the primary-input vector `vector` — the raw
    /// switch-level result the policies build on.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for a malformed vector.
    pub fn standby_stress_of_vector(&self, vector: &[bool]) -> Result<Vec<Vec<bool>>, FlowError> {
        self.standby_stress_flags(&StandbyPolicy::InputVector(vector.to_vec()))
    }

    /// Runs the full analysis under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for malformed vectors or model failures.
    pub fn run(&self, policy: &StandbyPolicy) -> Result<AgingReport, FlowError> {
        let gate_delta_vth = self.gate_delta_vth(policy)?;
        self.finish_report(policy, gate_delta_vth)
    }

    /// Runs the full analysis under `policy` with memoized model
    /// evaluations (see [`AgingAnalysis::gate_delta_vth_at_cached`]).
    /// `run_with_cache(policy, &NoCache)` is numerically identical to a
    /// cached run with any other conforming cache.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for malformed vectors or model failures.
    pub fn run_with_cache<C: DeltaVthCache>(
        &self,
        policy: &StandbyPolicy,
        cache: &C,
    ) -> Result<AgingReport, FlowError> {
        self.run_with_cache_cancellable(policy, cache, &CancelToken::new())
    }

    /// Runs the full cached analysis under a cooperative [`CancelToken`]:
    /// the ΔV_th loop — the expensive half of the flow — polls the token at
    /// every gate, so a sweep watchdog can turn a straggling job into
    /// [`FlowError::Cancelled`] instead of a pool-stalling hang.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] once `cancel` is set, or the usual
    /// [`FlowError`]s for malformed vectors and model failures.
    pub fn run_with_cache_cancellable<C: DeltaVthCache>(
        &self,
        policy: &StandbyPolicy,
        cache: &C,
        cancel: &CancelToken,
    ) -> Result<AgingReport, FlowError> {
        let gate_delta_vth =
            self.gate_delta_vth_at_cached_cancellable(policy, self.config.lifetime, cache, cancel)?;
        self.finish_report(policy, gate_delta_vth)
    }

    /// Timing + leakage from a per-gate ΔV_th vector (shared tail of the
    /// cached and uncached run paths).
    fn finish_report(
        &self,
        policy: &StandbyPolicy,
        gate_delta_vth: Vec<f64>,
    ) -> Result<AgingReport, FlowError> {
        let nominal = TimingAnalysis::nominal(self.circuit);
        let degraded =
            TimingAnalysis::degraded(self.circuit, &gate_delta_vth, self.config.nbti.params())?;
        let standby_leakage = match policy {
            StandbyPolicy::InputVector(v) => {
                Some(circuit_leakage(self.circuit, v, &self.prep.table)?)
            }
            // Control points perturb the leakage of the forced gates only;
            // report the base vector's leakage as the (close) estimate.
            StandbyPolicy::ControlPoints { vector, .. } => {
                Some(circuit_leakage(self.circuit, vector, &self.prep.table)?)
            }
            _ => None,
        };
        let active_leakage =
            expected_circuit_leakage(self.circuit, &self.prep.probs, &self.prep.table);
        Ok(AgingReport {
            nominal,
            degraded,
            gate_delta_vth,
            standby_leakage,
            active_leakage,
        })
    }

    /// Standby stress flags per gate per PMOS under `policy`.
    fn standby_stress_flags(&self, policy: &StandbyPolicy) -> Result<Vec<Vec<bool>>, FlowError> {
        let lib = self.circuit.library();
        match policy {
            StandbyPolicy::InputVector(v) => {
                let n = self.circuit.primary_inputs().len();
                if v.len() != n {
                    return Err(FlowError::StandbyVectorWidth {
                        expected: n,
                        got: v.len(),
                    });
                }
                let values = logic::simulate(self.circuit, v)?;
                Ok(self
                    .circuit
                    .gates()
                    .iter()
                    .map(|gate| {
                        let pins: Vec<bool> =
                            gate.inputs().iter().map(|&net| values.of(net)).collect();
                        lib.cell(gate.cell()).stressed_pmos(&pins)
                    })
                    .collect())
            }
            StandbyPolicy::ControlPoints { vector, forced } => {
                let mut flags =
                    self.standby_stress_flags(&StandbyPolicy::InputVector(vector.clone()))?;
                for gid in forced {
                    if gid.index() >= flags.len() {
                        return Err(FlowError::GateVectorWidth {
                            expected: flags.len(),
                            got: gid.index() + 1,
                        });
                    }
                    // A control point drives the gate's inputs high during
                    // standby: no PMOS in the gate is negatively biased.
                    for f in &mut flags[gid.index()] {
                        *f = false;
                    }
                }
                Ok(flags)
            }
            // The idealized bounds force every PMOS gate terminal,
            // regardless of logical consistency — exactly the paper's
            // "this assumption is only used to calculate the maximum
            // possible degradation" caveat.
            StandbyPolicy::AllInternalZero => Ok(self
                .circuit
                .gates()
                .iter()
                .map(|gate| vec![true; lib.cell(gate.cell()).pmos_count()])
                .collect()),
            StandbyPolicy::AllInternalOne => Ok(self
                .circuit
                .gates()
                .iter()
                .map(|gate| vec![false; lib.cell(gate.cell()).pmos_count()])
                .collect()),
            StandbyPolicy::PowerGatedFooter => Ok(self
                .circuit
                .gates()
                .iter()
                .map(|gate| vec![false; lib.cell(gate.cell()).pmos_count()])
                .collect()),
        }
    }

    /// Standby leakage for an explicit input vector (convenience used by
    /// the IVC search loop, bypassing the timing analysis).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for a malformed vector.
    pub fn standby_leakage(&self, vector: &[bool]) -> Result<f64, FlowError> {
        Ok(circuit_leakage(self.circuit, vector, &self.prep.table)?)
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        self.config
    }
}

/// The result of one aging analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingReport {
    /// Timing at time zero.
    pub nominal: TimingReport,
    /// Timing after the configured lifetime.
    pub degraded: TimingReport,
    /// Worst PMOS threshold shift of each gate, in volts.
    pub gate_delta_vth: Vec<f64>,
    /// Standby leakage in amperes (only for realizable input-vector
    /// policies).
    pub standby_leakage: Option<f64>,
    /// Expected active-mode leakage in amperes.
    pub active_leakage: f64,
}

impl AgingReport {
    /// Relative critical-path delay increase
    /// `(degraded − nominal)/nominal`.
    pub fn degradation_fraction(&self) -> f64 {
        let d0 = self.nominal.max_delay_ps();
        (self.degraded.max_delay_ps() - d0) / d0
    }

    /// The largest per-gate threshold shift, in volts.
    pub fn worst_delta_vth(&self) -> f64 {
        self.gate_delta_vth.iter().cloned().fold(0.0, f64::max)
    }
}

/// Expands a [`Vector`] standby vector helper: freeze the circuit at `v`.
pub fn input_vector_policy(v: Vector) -> StandbyPolicy {
    StandbyPolicy::InputVector(v.to_bools())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_netlist::iscas;

    fn setup() -> (FlowConfig, Circuit) {
        (FlowConfig::paper_defaults().unwrap(), iscas::c17())
    }

    #[test]
    fn worst_case_beats_best_case() {
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let worst = a.run(&StandbyPolicy::AllInternalZero).unwrap();
        let best = a.run(&StandbyPolicy::AllInternalOne).unwrap();
        assert!(worst.degradation_fraction() > best.degradation_fraction());
        assert!(best.degradation_fraction() > 0.0, "active stress remains");
    }

    #[test]
    fn power_gating_matches_best_case_closely() {
        // The paper: with a footer no PMOS is stressed in standby, so the
        // degradation equals the internal-node-control best case.
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let footer = a.run(&StandbyPolicy::PowerGatedFooter).unwrap();
        let best = a.run(&StandbyPolicy::AllInternalOne).unwrap();
        let rel = (footer.degradation_fraction() - best.degradation_fraction()).abs()
            / best.degradation_fraction();
        assert!(
            rel < 1e-9,
            "footer {} best {}",
            footer.degradation_fraction(),
            best.degradation_fraction()
        );
    }

    #[test]
    fn input_vector_policy_is_between_bounds() {
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let worst = a.run(&StandbyPolicy::AllInternalZero).unwrap();
        let best = a.run(&StandbyPolicy::AllInternalOne).unwrap();
        for bits in [0u32, 7, 21, 31] {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let r = a.run(&StandbyPolicy::InputVector(v)).unwrap();
            assert!(r.degradation_fraction() <= worst.degradation_fraction() + 1e-12);
            assert!(r.degradation_fraction() >= best.degradation_fraction() - 1e-12);
            assert!(r.standby_leakage.unwrap() > 0.0);
        }
    }

    #[test]
    fn degradation_magnitude_is_paperlike() {
        // The paper's Table 4 ballpark: a few percent delay degradation
        // over ~10 years.
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let worst = a.run(&StandbyPolicy::AllInternalZero).unwrap();
        let f = worst.degradation_fraction();
        assert!(f > 0.01 && f < 0.12, "degradation {f}");
    }

    #[test]
    fn wrong_vector_width_is_error() {
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        assert!(matches!(
            a.run(&StandbyPolicy::InputVector(vec![true; 3])),
            Err(FlowError::StandbyVectorWidth { .. })
        ));
    }

    #[test]
    fn pre_cancelled_token_aborts_the_cached_run() {
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = a
            .run_with_cache_cancellable(
                &StandbyPolicy::AllInternalZero,
                &crate::cache::NoCache,
                &token,
            )
            .unwrap_err();
        assert!(matches!(err, FlowError::Cancelled));
        // An uncancelled token changes nothing.
        let ok = a
            .run_with_cache_cancellable(
                &StandbyPolicy::AllInternalZero,
                &crate::cache::NoCache,
                &CancelToken::new(),
            )
            .unwrap();
        let plain = a.run(&StandbyPolicy::AllInternalZero).unwrap();
        assert!((ok.degradation_fraction() - plain.degradation_fraction()).abs() < 1e-12);
    }

    #[test]
    fn delta_vth_is_per_gate_and_bounded() {
        let (config, circuit) = setup();
        let a = AgingAnalysis::new(&config, &circuit).unwrap();
        let dv = a.gate_delta_vth(&StandbyPolicy::AllInternalZero).unwrap();
        assert_eq!(dv.len(), circuit.gates().len());
        for v in dv {
            assert!((0.0..0.1).contains(&v));
        }
    }
}

//! Standby-state policies: what the circuit's internal nodes do while the
//! circuit is parked.

use relia_netlist::GateId;

/// How the circuit's state is held during standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StandbyPolicy {
    /// Input vector control: the primary inputs are frozen at this vector
    /// (index i drives `primary_inputs()[i]`) and the internal nodes follow
    /// combinationally.
    InputVector(Vec<bool>),
    /// Input vector control plus *control points* (Lin et al., the paper's
    /// ref.\[9\]): the circuit parks on `vector`, but the listed gates have
    /// control points inserted on their inputs that drive them to the
    /// stress-free state during standby.
    ControlPoints {
        /// The frozen primary-input vector.
        vector: Vec<bool>,
        /// Gates whose inputs are forced high (stress-free) in standby.
        forced: Vec<GateId>,
    },
    /// Idealized worst case: every gate input is held low, so every PMOS
    /// with a V_dd-connected source is stressed all standby long. Not
    /// realizable by any input vector; used to bound the degradation
    /// (the paper's "all internal nodes 0" assumption).
    AllInternalZero,
    /// Idealized best case: every gate input is held high — the
    /// internal-node-control target ("all PMOS driven by '1'").
    AllInternalOne,
    /// Power gating with an NMOS footer (or footer+header): the virtual
    /// rail collapses, internal nodes float up toward V_dd, and no PMOS is
    /// negatively biased during standby.
    PowerGatedFooter,
}

impl StandbyPolicy {
    /// Whether the policy corresponds to a physically applicable control
    /// (vs. an idealized bound).
    pub fn is_realizable(&self) -> bool {
        matches!(
            self,
            StandbyPolicy::InputVector(_)
                | StandbyPolicy::ControlPoints { .. }
                | StandbyPolicy::PowerGatedFooter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realizability() {
        assert!(StandbyPolicy::InputVector(vec![true]).is_realizable());
        assert!(StandbyPolicy::ControlPoints {
            vector: vec![true],
            forced: vec![],
        }
        .is_realizable());
        assert!(StandbyPolicy::PowerGatedFooter.is_realizable());
        assert!(!StandbyPolicy::AllInternalZero.is_realizable());
        assert!(!StandbyPolicy::AllInternalOne.is_realizable());
    }
}

//! Dual-V_th assignment for simultaneous leakage and aging reduction
//! (the paper's refs \[30\]/\[44\] and its Section 4.1 argument: a higher
//! threshold cuts subthreshold leakage *exponentially* and NBTI *via the
//! overdrive/field dependence*, at an alpha-power-law delay cost).
//!
//! The optimizer greedily moves slack-rich gates to the high-V_th variant,
//! re-running static timing after each move so the circuit's nominal
//! maximum delay never grows beyond the allowed budget.

use relia_core::consts::thermal_voltage;
use relia_netlist::GateId;
use relia_sta::TimingAnalysis;

use crate::analysis::AgingAnalysis;
use crate::error::FlowError;
use crate::policy::StandbyPolicy;

/// Result of a dual-V_th assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DualVthResult {
    /// Gates assigned to the high-V_th variant.
    pub high_vth_gates: Vec<GateId>,
    /// Nominal max delay before/after, in ps (after ≤ before·(1+budget)).
    pub nominal_delay_ps: (f64, f64),
    /// Standby leakage before/after, in amperes.
    pub standby_leakage: (f64, f64),
    /// Lifetime delay degradation before/after (relative).
    pub degradation: (f64, f64),
}

impl DualVthResult {
    /// Fraction of gates moved to high V_th.
    pub fn coverage(&self, total_gates: usize) -> f64 {
        self.high_vth_gates.len() as f64 / total_gates.max(1) as f64
    }

    /// Relative standby-leakage saving.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.standby_leakage.1 / self.standby_leakage.0
    }

    /// Relative aging saving.
    pub fn aging_saving(&self) -> f64 {
        1.0 - self.degradation.1 / self.degradation.0
    }
}

/// Greedy dual-V_th assignment under `policy`'s standby state.
///
/// * `vth_high` — the high threshold in volts (must exceed the nominal).
/// * `delay_budget` — allowed relative growth of the nominal max delay
///   (0.0 = keep time-zero timing exactly).
/// * `standby_vector` — vector whose leakage is reported (the policy's own
///   vector when it has one; pass the all-zero vector otherwise).
///
/// # Errors
///
/// Returns [`FlowError`] for an invalid threshold, budget, or policy.
pub fn assign_dual_vth(
    analysis: &AgingAnalysis<'_>,
    policy: &StandbyPolicy,
    standby_vector: &[bool],
    vth_high: f64,
    delay_budget: f64,
) -> Result<DualVthResult, FlowError> {
    let params = analysis.config().nbti.params();
    let vth_low = params.vth0.0;
    if !(vth_high > vth_low && vth_high < params.vdd.0) {
        return Err(FlowError::InvalidParameter {
            name: "vth_high",
            value: vth_high,
        });
    }
    if !(0.0..1.0).contains(&delay_budget) {
        return Err(FlowError::InvalidParameter {
            name: "delay_budget",
            value: delay_budget,
        });
    }
    let circuit = analysis.circuit();
    let alpha = params.alpha;
    // Alpha-power-law delay multiplier of the high-V_th variant.
    let penalty = ((params.vdd.0 - vth_low) / (params.vdd.0 - vth_high)).powf(alpha);

    let base_delays = relia_sta::nominal_gate_delays(circuit);
    let nominal = TimingAnalysis::with_delays(circuit, base_delays.clone())?;
    let limit = nominal.max_delay_ps() * (1.0 + delay_budget);

    // Greedy: walk gates in decreasing slack, keep each assignment only if
    // the circuit still meets the limit.
    let report = nominal.clone();
    let slacks = report.slacks(circuit);
    let mut order: Vec<GateId> = circuit.topo_order().to_vec();
    order.sort_by(|a, b| {
        let sa = slacks[circuit.gate(*a).output().index()];
        let sb = slacks[circuit.gate(*b).output().index()];
        sb.total_cmp(&sa)
    });

    let mut is_high = vec![false; circuit.gates().len()];
    let mut delays = base_delays.clone();
    for gid in order {
        let idx = gid.index();
        let saved = delays[idx];
        delays[idx] = base_delays[idx] * penalty;
        is_high[idx] = true;
        let trial = TimingAnalysis::with_delays(circuit, delays.clone())?;
        if trial.max_delay_ps() > limit + 1e-9 {
            delays[idx] = saved;
            is_high[idx] = false;
        }
    }
    let assigned = TimingAnalysis::with_delays(circuit, delays.clone())?;

    // Aging before/after: base shifts from the policy, scaled per gate by
    // the eq. 23 overdrive/field factor of its threshold.
    let base_shifts = analysis.gate_delta_vth(policy)?;
    let od_low = params.vdd.0 - vth_low;
    let od_high = params.vdd.0 - vth_high;
    let high_scale = (od_high / od_low).sqrt() * ((od_high - od_low) / params.field_scale.0).exp();
    let aged_delay = |delays: &[f64], high: Option<&[bool]>| -> Result<f64, FlowError> {
        let aged: Vec<f64> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let gate_high = high.map(|h| h[i]).unwrap_or(false);
                let (dv, od) = if gate_high {
                    (base_shifts[i] * high_scale, od_high)
                } else {
                    (base_shifts[i], od_low)
                };
                d * (1.0 + alpha * dv / od)
            })
            .collect();
        Ok(TimingAnalysis::with_delays(circuit, aged)?.max_delay_ps())
    };
    let deg_before = aged_delay(&base_delays, None)? / nominal.max_delay_ps() - 1.0;
    let deg_after = aged_delay(&delays, Some(&is_high))? / assigned.max_delay_ps() - 1.0;

    // Standby leakage before/after: high-V_th gates' subthreshold component
    // drops by exp(−ΔV_th/(n·v_T)) at the table temperature.
    let table = analysis.leakage_table();
    let vt = thermal_voltage(table.temp());
    let sub_factor = (-(vth_high - vth_low) / (analysis.config().devices.swing_n * vt)).exp();
    let values = relia_sim::logic::simulate(circuit, standby_vector)?;
    let mut leak_before = 0.0;
    let mut leak_after = 0.0;
    for (i, gate) in circuit.gates().iter().enumerate() {
        let pins: Vec<bool> = gate.inputs().iter().map(|&n| values.of(n)).collect();
        let b = table.of(gate.cell(), relia_cells::Vector::from_bits(&pins));
        leak_before += b.total();
        leak_after += if is_high[i] {
            b.subthreshold * sub_factor + b.gate
        } else {
            b.total()
        };
    }

    let high_vth_gates: Vec<GateId> = circuit
        .topo_order()
        .iter()
        .copied()
        .filter(|g| is_high[g.index()])
        .collect();
    Ok(DualVthResult {
        high_vth_gates,
        nominal_delay_ps: (nominal.max_delay_ps(), assigned.max_delay_ps()),
        standby_leakage: (leak_before, leak_after),
        degradation: (deg_before, deg_after),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use relia_netlist::iscas;

    fn run(budget: f64) -> (DualVthResult, usize) {
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let zeros = vec![false; circuit.primary_inputs().len()];
        let r = assign_dual_vth(
            &analysis,
            &StandbyPolicy::AllInternalZero,
            &zeros,
            0.30,
            budget,
        )
        .unwrap();
        (r, circuit.gates().len())
    }

    #[test]
    fn zero_budget_preserves_nominal_timing() {
        let (r, total) = run(0.0);
        assert!(r.nominal_delay_ps.1 <= r.nominal_delay_ps.0 + 1e-9);
        // Plenty of slack-rich gates move to high V_th...
        assert!(r.coverage(total) > 0.3, "coverage {}", r.coverage(total));
        // ...and leakage improves; at zero budget the critical path keeps
        // its low-V_th gates, so critical-path aging is unchanged (the
        // leakage win is "free", the aging win needs delay budget).
        assert!(
            r.leakage_saving() > 0.1,
            "leakage saving {}",
            r.leakage_saving()
        );
        assert!(r.aging_saving() >= 0.0, "aging saving {}", r.aging_saving());
    }

    #[test]
    fn delay_budget_buys_aging_relief() {
        // With timing headroom the critical path itself goes high-V_th,
        // and its smaller dVth shows up as a lower relative degradation.
        let (r, _) = run(0.10);
        assert!(r.aging_saving() > 0.05, "aging saving {}", r.aging_saving());
        assert!(r.nominal_delay_ps.1 <= r.nominal_delay_ps.0 * 1.10 + 1e-9);
    }

    #[test]
    fn budget_buys_coverage() {
        let (tight, total) = run(0.0);
        let (loose, _) = run(0.10);
        assert!(loose.high_vth_gates.len() >= tight.high_vth_gates.len());
        assert!(loose.leakage_saving() >= tight.leakage_saving());
        assert!(loose.coverage(total) > tight.coverage(total));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let zeros = vec![false; 5];
        assert!(assign_dual_vth(
            &analysis,
            &StandbyPolicy::AllInternalZero,
            &zeros,
            0.10,
            0.0
        )
        .is_err());
        assert!(assign_dual_vth(
            &analysis,
            &StandbyPolicy::AllInternalZero,
            &zeros,
            0.30,
            -0.1
        )
        .is_err());
    }
}

//! Inverse analysis: how long until the circuit eats its aging guardband?
//!
//! Designers budget a timing margin (say 5%) for aging; the question is
//! whether the circuit survives its mission time within that budget. This
//! module bisects the monotone degradation-vs-time curve to find the
//! crossing.

use relia_core::Seconds;
use relia_sta::TimingAnalysis;

use crate::analysis::AgingAnalysis;
use crate::error::FlowError;
use crate::policy::StandbyPolicy;

/// Result of the lifetime solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeBudget {
    /// The degradation crosses the budget at this operating time.
    ExhaustedAt(Seconds),
    /// The budget survives the whole search horizon.
    SurvivesBeyond(Seconds),
}

/// Finds the operating time at which the relative delay degradation under
/// `policy` first reaches `budget` (e.g. `0.05` for a 5% guardband),
/// searching up to `horizon`.
///
/// The degradation is monotone in time, so bisection converges; the answer
/// is accurate to ~0.5% of the crossing time.
///
/// # Errors
///
/// Returns [`FlowError`] for an invalid policy or a non-positive budget or
/// horizon.
///
/// ```
/// use relia_core::Seconds;
/// use relia_flow::{lifetime_to_budget, AgingAnalysis, FlowConfig, LifetimeBudget, StandbyPolicy};
/// use relia_netlist::iscas;
///
/// # fn main() -> Result<(), relia_flow::FlowError> {
/// let circuit = iscas::c17();
/// let config = FlowConfig::paper_defaults()?;
/// let analysis = AgingAnalysis::new(&config, &circuit)?;
/// // A generous 10% budget survives the 10-year horizon...
/// let b = lifetime_to_budget(&analysis, &StandbyPolicy::AllInternalZero, 0.10, Seconds(1.0e8))?;
/// assert!(matches!(b, LifetimeBudget::SurvivesBeyond(_)));
/// // ...a 2% budget does not.
/// let b = lifetime_to_budget(&analysis, &StandbyPolicy::AllInternalZero, 0.02, Seconds(1.0e8))?;
/// assert!(matches!(b, LifetimeBudget::ExhaustedAt(_)));
/// # Ok(())
/// # }
/// ```
pub fn lifetime_to_budget(
    analysis: &AgingAnalysis<'_>,
    policy: &StandbyPolicy,
    budget: f64,
    horizon: Seconds,
) -> Result<LifetimeBudget, FlowError> {
    if budget <= 0.0 || !budget.is_finite() {
        return Err(FlowError::InvalidParameter {
            name: "budget",
            value: budget,
        });
    }
    if horizon.0 <= 0.0 || !horizon.0.is_finite() {
        return Err(FlowError::InvalidParameter {
            name: "horizon",
            value: horizon.0,
        });
    }
    let circuit = analysis.circuit();
    let params = analysis.config().nbti.params();
    let nominal = TimingAnalysis::nominal(circuit).max_delay_ps();
    let degradation_at = |t: Seconds| -> Result<f64, FlowError> {
        let shifts = analysis.gate_delta_vth_at(policy, t)?;
        let aged = TimingAnalysis::degraded(circuit, &shifts, params)?;
        Ok(aged.max_delay_ps() / nominal - 1.0)
    };

    if degradation_at(horizon)? < budget {
        return Ok(LifetimeBudget::SurvivesBeyond(horizon));
    }
    // Bisect on log-time (geometric midpoint): degradation is smooth and
    // monotone in t^(1/4).
    let mut lo = (horizon.0 * 1e-8).max(1.0);
    let mut hi = horizon.0;
    for _ in 0..40 {
        let mid = (lo * hi).sqrt();
        if degradation_at(Seconds(mid))? < budget {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.005 {
            break;
        }
    }
    Ok(LifetimeBudget::ExhaustedAt(Seconds(hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use relia_netlist::iscas;

    #[test]
    fn crossing_time_matches_forward_evaluation() {
        let circuit = iscas::circuit("c432").unwrap();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let policy = StandbyPolicy::AllInternalZero;
        let budget = 0.03;
        match lifetime_to_budget(&analysis, &policy, budget, Seconds(1.0e8)).unwrap() {
            LifetimeBudget::ExhaustedAt(t) => {
                // Just before the crossing the degradation is below budget;
                // just after, above.
                let before = {
                    let s = analysis
                        .gate_delta_vth_at(&policy, Seconds(t.0 * 0.8))
                        .unwrap();
                    let aged =
                        TimingAnalysis::degraded(&circuit, &s, analysis.config().nbti.params())
                            .unwrap();
                    aged.max_delay_ps() / TimingAnalysis::nominal(&circuit).max_delay_ps() - 1.0
                };
                assert!(before < budget, "before crossing: {before}");
                assert!(t.0 > 1.0e5 && t.0 < 1.0e8, "crossing at {t}");
            }
            other => panic!("expected a crossing, got {other:?}"),
        }
    }

    #[test]
    fn tighter_budgets_exhaust_sooner() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        let policy = StandbyPolicy::AllInternalZero;
        let t2 = match lifetime_to_budget(&analysis, &policy, 0.02, Seconds(1.0e8)).unwrap() {
            LifetimeBudget::ExhaustedAt(t) => t.0,
            other => panic!("{other:?}"),
        };
        let t3 = match lifetime_to_budget(&analysis, &policy, 0.03, Seconds(1.0e8)).unwrap() {
            LifetimeBudget::ExhaustedAt(t) => t.0,
            other => panic!("{other:?}"),
        };
        assert!(t2 < t3);
    }

    #[test]
    fn bad_budget_is_error() {
        let circuit = iscas::c17();
        let config = FlowConfig::paper_defaults().unwrap();
        let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
        assert!(lifetime_to_budget(
            &analysis,
            &StandbyPolicy::AllInternalZero,
            -0.1,
            Seconds(1.0e8)
        )
        .is_err());
    }
}

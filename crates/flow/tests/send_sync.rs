//! Static assertions that the sweep-facing flow types cross thread
//! boundaries.
//!
//! The `relia-jobs` worker pool shares [`FlowConfig`] and [`AnalysisPrep`]
//! between workers via `Arc` and moves [`AgingReport`]s back over channels;
//! these bounds are part of the crate's public contract, so their loss (e.g.
//! by an `Rc` sneaking into a field) must fail compilation here rather than
//! in a downstream crate.

#![allow(clippy::unwrap_used)]
use relia_flow::{
    AgingAnalysis, AgingReport, AnalysisPrep, DeltaVthCache, FlowConfig, NoCache, StandbyPolicy,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn sweep_types_are_send_and_sync() {
    assert_send_sync::<FlowConfig>();
    assert_send_sync::<AnalysisPrep>();
    assert_send_sync::<StandbyPolicy>();
    assert_send_sync::<AgingReport>();
    assert_send_sync::<NoCache>();
    assert_send_sync::<AgingAnalysis<'static>>();
    assert_send_sync::<relia_core::StressKey>();
    assert_send_sync::<relia_core::NbtiModel>();
    assert_send_sync::<relia_netlist::Circuit>();
}

#[test]
fn cached_run_matches_uncached_run_closely() {
    let circuit = relia_netlist::iscas::c17();
    let config = FlowConfig::paper_defaults().unwrap();
    let analysis = AgingAnalysis::new(&config, &circuit).unwrap();
    for policy in [
        StandbyPolicy::AllInternalZero,
        StandbyPolicy::AllInternalOne,
        StandbyPolicy::InputVector(vec![true, false, true, false, true]),
    ] {
        let direct = analysis.run(&policy).unwrap();
        let cached = analysis.run_with_cache(&policy, &NoCache).unwrap();
        for (a, b) in direct
            .gate_delta_vth
            .iter()
            .zip(cached.gate_delta_vth.iter())
        {
            // The cached path evaluates at the quantized canonical point;
            // the perturbation is parts in 1e10.
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1e-12), "{a} vs {b}");
        }
        assert_eq!(direct.standby_leakage, cached.standby_leakage);
        assert_eq!(direct.active_leakage, cached.active_leakage);
    }
}

#[test]
fn prep_reuse_matches_fresh_analysis() {
    let circuit = relia_netlist::iscas::c17();
    let base = FlowConfig::paper_defaults().unwrap();
    let prep = AgingAnalysis::prep(&base, &circuit).unwrap();

    // A config differing only in schedule/lifetime may reuse the prep.
    let mut swept = FlowConfig::with_schedule(
        relia_core::Ras::new(1.0, 5.0).unwrap(),
        relia_core::Kelvin(360.0),
    )
    .unwrap();
    swept.lifetime = relia_core::Seconds(3.0e7);

    let fresh = AgingAnalysis::new(&swept, &circuit).unwrap();
    let reused = AgingAnalysis::from_prep(&swept, &circuit, prep);
    let a = fresh.run(&StandbyPolicy::AllInternalZero).unwrap();
    let b = reused.run(&StandbyPolicy::AllInternalZero).unwrap();
    assert_eq!(a.gate_delta_vth, b.gate_delta_vth);
    assert_eq!(a.active_leakage, b.active_leakage);
}

#[test]
fn cache_trait_is_object_safe_through_references() {
    // `&C` forwarding lets a shared cache be passed by reference through
    // the generic entry points.
    let model = relia_core::NbtiModel::ptm90().unwrap();
    let config = FlowConfig::paper_defaults().unwrap();
    let key = config.stress_key(
        &relia_core::PmosStress::worst_case(),
        relia_core::Seconds(1.0e8),
    );
    let cache = NoCache;
    let via_ref: &dyn DeltaVthCache = &cache;
    assert_eq!(
        via_ref.delta_vth(key, &model).unwrap(),
        key.evaluate(&model).unwrap()
    );
}

//! Property-based tests for the analysis platform.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_core::{Kelvin, Ras, Seconds};
use relia_flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia_netlist::iscas;
use std::sync::OnceLock;

/// One prepared analysis shared by every proptest case: the leakage table
/// build dominates otherwise.
fn shared_analysis() -> &'static AgingAnalysis<'static> {
    static S: OnceLock<AgingAnalysis<'static>> = OnceLock::new();
    S.get_or_init(|| {
        let config: &'static FlowConfig =
            Box::leak(Box::new(FlowConfig::paper_defaults().expect("built-in")));
        let circuit: &'static relia_netlist::Circuit = Box::leak(Box::new(iscas::c17()));
        AgingAnalysis::new(config, circuit).expect("analysis")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any input-vector policy degrades between the idealized bounds, and
    /// its leakage is positive.
    #[test]
    fn vector_policies_are_bounded(bits in 0u32..32) {
        let analysis = shared_analysis();
        let worst = analysis.run(&StandbyPolicy::AllInternalZero).expect("run");
        let best = analysis.run(&StandbyPolicy::AllInternalOne).expect("run");
        let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        let r = analysis.run(&StandbyPolicy::InputVector(v)).expect("run");
        prop_assert!(r.degradation_fraction() <= worst.degradation_fraction() + 1e-12);
        prop_assert!(r.degradation_fraction() >= best.degradation_fraction() - 1e-12);
        prop_assert!(r.standby_leakage.expect("vector policy") > 0.0);
    }

    /// Gate shifts are monotone in the operating time for any policy.
    #[test]
    fn shifts_monotone_in_time(bits in 0u32..32, t in 1.0e5f64..5.0e7) {
        let analysis = shared_analysis();
        let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        let policy = StandbyPolicy::InputVector(v);
        let early = analysis.gate_delta_vth_at(&policy, Seconds(t)).expect("valid");
        let late = analysis.gate_delta_vth_at(&policy, Seconds(2.0 * t)).expect("valid");
        for (e, l) in early.iter().zip(&late) {
            prop_assert!(l >= e);
        }
    }

    /// Degradation is monotone in the standby temperature under the
    /// worst-case policy. (Kept to a handful of cases: each one builds two
    /// fresh leakage tables.)
    #[test]
    fn degradation_monotone_in_standby_temp(temp in 310.0f64..395.0) {
        let circuit = iscas::c17();
        let mk = |t: f64| FlowConfig::with_schedule(
            Ras::new(1.0, 9.0).expect("valid"),
            Kelvin(t),
        ).expect("valid");
        let cool_cfg = mk(temp);
        let warm_cfg = mk(temp + 5.0);
        let cool = AgingAnalysis::new(&cool_cfg, &circuit)
            .expect("analysis")
            .run(&StandbyPolicy::AllInternalZero)
            .expect("run");
        let warm = AgingAnalysis::new(&warm_cfg, &circuit)
            .expect("analysis")
            .run(&StandbyPolicy::AllInternalZero)
            .expect("run");
        prop_assert!(warm.degradation_fraction() >= cool.degradation_fraction());
    }
}

#[test]
fn monte_carlo_sp_mode_tracks_propagation() {
    use relia_flow::SpEstimator;
    let circuit = iscas::circuit("c432").expect("known");
    let prop_cfg = FlowConfig::paper_defaults().expect("built-in");
    let mut mc_cfg = FlowConfig::paper_defaults().expect("built-in");
    mc_cfg.sp_estimator = SpEstimator::MonteCarlo {
        samples: 3000,
        seed: 11,
    };
    let a = AgingAnalysis::new(&prop_cfg, &circuit)
        .expect("analysis")
        .run(&StandbyPolicy::AllInternalZero)
        .expect("run");
    let b = AgingAnalysis::new(&mc_cfg, &circuit)
        .expect("analysis")
        .run(&StandbyPolicy::AllInternalZero)
        .expect("run");
    let rel =
        (a.degradation_fraction() - b.degradation_fraction()).abs() / a.degradation_fraction();
    assert!(rel < 0.05, "propagation vs MC disagree by {rel}");
}

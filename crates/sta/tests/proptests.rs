//! Property-based tests for timing-analysis invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_netlist::iscas;
use relia_sta::TimingAnalysis;

proptest! {
    /// With arbitrary positive gate delays, every net's arrival exceeds all
    /// of its fan-in arrivals, and the critical path sums to the max delay.
    #[test]
    fn arrival_and_path_invariants(
        seed_delays in prop::collection::vec(0.1f64..100.0, 6..=6),
    ) {
        let c = iscas::c17();
        let report = TimingAnalysis::with_delays(&c, seed_delays).expect("6 gates");
        for g in c.gates() {
            let out = report.arrival(g.output());
            for n in g.inputs() {
                prop_assert!(out > report.arrival(*n));
            }
        }
        let path_sum: f64 = report
            .critical_path()
            .iter()
            .map(|g| report.gate_delays()[g.index()])
            .sum();
        prop_assert!((path_sum - report.max_delay_ps()).abs() < 1e-9);
    }

    /// Slacks are non-negative against the circuit's own max delay, and at
    /// least one primary output has zero slack.
    #[test]
    fn slack_invariants(seed_delays in prop::collection::vec(0.1f64..100.0, 6..=6)) {
        let c = iscas::c17();
        let report = TimingAnalysis::with_delays(&c, seed_delays).expect("6 gates");
        let slacks = report.slacks(&c);
        for s in &slacks {
            prop_assert!(*s > -1e-9);
        }
        let zero_po = c
            .primary_outputs()
            .iter()
            .any(|po| slacks[po.index()].abs() < 1e-9);
        prop_assert!(zero_po);
    }

    /// Degradation is monotone: growing any gate's threshold shift never
    /// shrinks the max delay.
    #[test]
    fn degradation_monotone(
        base in prop::collection::vec(0.0f64..0.05, 6..=6),
        bump_idx in 0usize..6,
        bump in 0.001f64..0.02,
    ) {
        let c = iscas::c17();
        let params = relia_core::NbtiParams::ptm90().expect("built-in");
        let before = TimingAnalysis::degraded(&c, &base, &params).expect("valid");
        let mut bumped = base.clone();
        bumped[bump_idx] += bump;
        let after = TimingAnalysis::degraded(&c, &bumped, &params).expect("valid");
        prop_assert!(after.max_delay_ps() >= before.max_delay_ps() - 1e-12);
    }
}

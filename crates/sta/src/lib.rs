#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-sta
//!
//! Static timing analysis over a [`relia_netlist::Circuit`], with support
//! for NBTI-degraded gate delays — the "STA tool" of the paper's flow.
//!
//! * [`delay`] — per-gate nominal delays (cell timing × fan-out load) and
//!   NBTI degradation factors (eq. 22 / eq. 21).
//! * [`analysis`] — arrival-time propagation, maximum delay, critical-path
//!   extraction, and per-net slack.
//! * [`paths`] — K-most-critical path enumeration (the "near-critical
//!   paths" the internal-node-control analysis targets).
//!
//! ```
//! use relia_netlist::iscas;
//! use relia_sta::analysis::TimingAnalysis;
//!
//! let c = iscas::c17();
//! let report = TimingAnalysis::nominal(&c);
//! assert!(report.max_delay_ps() > 0.0);
//! assert_eq!(report.critical_path().len(), 3); // c17 is 3 levels deep
//! ```

pub mod analysis;
pub mod delay;
pub mod error;
pub mod paths;

pub use analysis::{TimingAnalysis, TimingReport};
pub use delay::{degraded_gate_delays, nominal_gate_delays};
pub use error::StaError;
pub use paths::{k_critical_paths, TimingPath};

//! Arrival-time propagation and critical-path extraction.

use relia_core::NbtiParams;
use relia_netlist::{Circuit, GateId, NetDriver, NetId};

use crate::delay::{degraded_gate_delays, nominal_gate_delays};
use crate::error::StaError;

/// Static timing analysis entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingAnalysis;

impl TimingAnalysis {
    /// Analyzes the circuit with nominal (un-aged) gate delays.
    pub fn nominal(circuit: &Circuit) -> TimingReport {
        let delays = nominal_gate_delays(circuit);
        TimingReport::from_delays(circuit, delays)
    }

    /// Analyzes the circuit with NBTI-degraded gate delays: `delta_vth[g]`
    /// is the worst-case PMOS threshold shift of gate `g` in volts.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] for a malformed shift vector.
    pub fn degraded(
        circuit: &Circuit,
        delta_vth: &[f64],
        params: &NbtiParams,
    ) -> Result<TimingReport, StaError> {
        let delays = degraded_gate_delays(circuit, delta_vth, params)?;
        Ok(TimingReport::from_delays(circuit, delays))
    }

    /// Analyzes with explicit per-gate delays (picoseconds).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::GateVectorMismatch`] for a wrong-length vector.
    pub fn with_delays(circuit: &Circuit, delays: Vec<f64>) -> Result<TimingReport, StaError> {
        if delays.len() != circuit.gates().len() {
            return Err(StaError::GateVectorMismatch {
                expected: circuit.gates().len(),
                got: delays.len(),
            });
        }
        Ok(TimingReport::from_delays(circuit, delays))
    }
}

/// The result of one timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    gate_delays: Vec<f64>,
    arrival: Vec<f64>,
    max_delay: f64,
    critical_po: Option<NetId>,
    critical_path: Vec<GateId>,
}

impl TimingReport {
    fn from_delays(circuit: &Circuit, gate_delays: Vec<f64>) -> Self {
        let mut arrival = vec![0.0f64; circuit.nets().len()];
        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let input_arrival = gate
                .inputs()
                .iter()
                .map(|n| arrival[n.index()])
                .fold(0.0, f64::max);
            arrival[gate.output().index()] = input_arrival + gate_delays[gid.index()];
        }
        let critical_po = circuit
            .primary_outputs()
            .iter()
            .copied()
            .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
        let max_delay = critical_po.map(|po| arrival[po.index()]).unwrap_or(0.0);

        // Trace the critical path backwards from the critical PO.
        let mut critical_path = Vec::new();
        let mut net = critical_po;
        while let Some(n) = net {
            match circuit.net(n).driver() {
                NetDriver::PrimaryInput => break,
                NetDriver::Gate(gid) => {
                    critical_path.push(gid);
                    let gate = circuit.gate(gid);
                    net = gate
                        .inputs()
                        .iter()
                        .copied()
                        .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
                }
            }
        }
        critical_path.reverse();

        TimingReport {
            gate_delays,
            arrival,
            max_delay,
            critical_po,
            critical_path,
        }
    }

    /// Delay of each gate in picoseconds (indexed by `GateId::index`).
    pub fn gate_delays(&self) -> &[f64] {
        &self.gate_delays
    }

    /// Arrival time at each net in picoseconds (indexed by `NetId::index`).
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// The circuit's maximum (critical-path) delay in picoseconds.
    pub fn max_delay_ps(&self) -> f64 {
        self.max_delay
    }

    /// The primary output with the latest arrival.
    pub fn critical_output(&self) -> Option<NetId> {
        self.critical_po
    }

    /// Gates on the critical path, input side first.
    pub fn critical_path(&self) -> &[GateId] {
        &self.critical_path
    }

    /// Slack of each net against the circuit's own max delay: how much
    /// later the net could arrive without raising the maximum delay, under
    /// the (required time = max delay at every PO) convention.
    pub fn slacks(&self, circuit: &Circuit) -> Vec<f64> {
        // Required-time backward pass.
        let mut required = vec![f64::INFINITY; circuit.nets().len()];
        for &po in circuit.primary_outputs() {
            required[po.index()] = self.max_delay;
        }
        for &gid in circuit.topo_order().iter().rev() {
            let gate = circuit.gate(gid);
            let out_req = required[gate.output().index()];
            let in_req = out_req - self.gate_delays[gid.index()];
            for n in gate.inputs() {
                if in_req < required[n.index()] {
                    required[n.index()] = in_req;
                }
            }
        }
        required
            .iter()
            .zip(&self.arrival)
            .map(|(r, a)| r - a)
            .collect()
    }

    /// Gates whose slack at the output net is within `margin_ps` of zero —
    /// the near-critical set the internal-node-control analysis targets.
    pub fn near_critical_gates(&self, circuit: &Circuit, margin_ps: f64) -> Vec<GateId> {
        let slacks = self.slacks(circuit);
        let mut gates: Vec<GateId> = circuit
            .topo_order()
            .iter()
            .copied()
            .filter(|gid| slacks[circuit.gate(*gid).output().index()] <= margin_ps)
            .collect();
        gates.sort();
        gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_netlist::iscas;

    #[test]
    fn max_delay_equals_latest_po() {
        let c = iscas::c17();
        let r = TimingAnalysis::nominal(&c);
        let latest = c
            .primary_outputs()
            .iter()
            .map(|po| r.arrival(*po))
            .fold(0.0, f64::max);
        assert_eq!(r.max_delay_ps(), latest);
    }

    #[test]
    fn arrival_exceeds_fanin() {
        let c = iscas::circuit("c432").unwrap();
        let r = TimingAnalysis::nominal(&c);
        for g in c.gates() {
            let out = r.arrival(g.output());
            for n in g.inputs() {
                assert!(out > r.arrival(*n));
            }
        }
    }

    #[test]
    fn degradation_slows_the_circuit() {
        let c = iscas::circuit("c432").unwrap();
        let p = relia_core::NbtiParams::ptm90().unwrap();
        let nominal = TimingAnalysis::nominal(&c);
        let aged = TimingAnalysis::degraded(&c, &vec![0.030; c.gates().len()], &p).unwrap();
        assert!(aged.max_delay_ps() > nominal.max_delay_ps());
        // With a uniform 30 mV shift the whole path scales by the same
        // factor: α·ΔV/(V_g−V_th) = 1.3·0.03/0.78 = 5%.
        let ratio = aged.max_delay_ps() / nominal.max_delay_ps();
        assert!((ratio - 1.05).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn critical_path_is_connected_and_critical() {
        let c = iscas::circuit("c880").unwrap();
        let r = TimingAnalysis::nominal(&c);
        let path = r.critical_path();
        assert!(!path.is_empty());
        // Path delays sum to the max delay.
        let sum: f64 = path.iter().map(|g| r.gate_delays()[g.index()]).sum();
        assert!(
            (sum - r.max_delay_ps()).abs() < 1e-6,
            "sum {sum} max {}",
            r.max_delay_ps()
        );
        // Consecutive gates are actually connected.
        for w in path.windows(2) {
            let out = c.gate(w[0]).output();
            assert!(c.gate(w[1]).inputs().contains(&out));
        }
    }

    #[test]
    fn slack_is_nonnegative_and_zero_on_critical_path() {
        let c = iscas::circuit("c432").unwrap();
        let r = TimingAnalysis::nominal(&c);
        let slacks = r.slacks(&c);
        for (i, s) in slacks.iter().enumerate() {
            assert!(*s > -1e-6, "net {i} slack {s}");
        }
        for g in r.critical_path() {
            let s = slacks[c.gate(*g).output().index()];
            assert!(s.abs() < 1e-6, "critical gate slack {s}");
        }
    }
}

//! Per-gate delay computation: nominal and NBTI-degraded.

use relia_core::{DelayDegradation, NbtiParams};
use relia_netlist::Circuit;

use crate::error::StaError;

/// Nominal (time-zero) delay of every gate in picoseconds, indexed by
/// `GateId::index`: the cell's intrinsic delay plus its load-dependent term
/// over the fan-out it drives.
pub fn nominal_gate_delays(circuit: &Circuit) -> Vec<f64> {
    circuit
        .gates()
        .iter()
        .map(|gate| {
            let timing = circuit.library().cell(gate.cell()).timing();
            timing.delay_ps(circuit.load_of(gate.output()))
        })
        .collect()
}

/// NBTI-degraded delay of every gate: the nominal delay scaled by
/// `1 + α·ΔV_th/(V_g − V_th0)` (eq. 22), where `delta_vth[g]` is the
/// worst-case PMOS threshold shift of gate `g` in volts.
///
/// # Errors
///
/// Returns [`StaError`] when the shift vector has the wrong length or an
/// entry is negative, non-finite, or at least the overdrive.
///
/// ```
/// use relia_core::NbtiParams;
/// use relia_netlist::iscas;
/// use relia_sta::{degraded_gate_delays, nominal_gate_delays};
///
/// let c = iscas::c17();
/// let params = NbtiParams::ptm90().unwrap();
/// let aged = degraded_gate_delays(&c, &vec![0.030; 6], &params)?;
/// let fresh = nominal_gate_delays(&c);
/// assert!(aged.iter().zip(&fresh).all(|(a, f)| a > f));
/// # Ok::<(), relia_sta::StaError>(())
/// ```
pub fn degraded_gate_delays(
    circuit: &Circuit,
    delta_vth: &[f64],
    params: &NbtiParams,
) -> Result<Vec<f64>, StaError> {
    let n = circuit.gates().len();
    if delta_vth.len() != n {
        return Err(StaError::GateVectorMismatch {
            expected: n,
            got: delta_vth.len(),
        });
    }
    let dd = DelayDegradation::new(params);
    nominal_gate_delays(circuit)
        .into_iter()
        .zip(delta_vth.iter().enumerate())
        .map(|(nominal, (gi, &dv))| {
            let frac = dd.linear(dv).map_err(|_| StaError::InvalidShift {
                gate: gi,
                value: dv,
            })?;
            Ok(nominal * (1.0 + frac))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_netlist::iscas;

    #[test]
    fn nominal_delays_are_positive() {
        let c = iscas::c17();
        for d in nominal_gate_delays(&c) {
            assert!(d > 0.0);
        }
    }

    #[test]
    fn higher_fanout_means_longer_delay() {
        let c = iscas::c17();
        // Net 11 feeds two NAND gates; net 10 feeds one.
        let delays = nominal_gate_delays(&c);
        let g10 = c.gates().iter().position(|g| g.name() == "10").unwrap();
        let g11 = c.gates().iter().position(|g| g.name() == "11").unwrap();
        assert!(delays[g11] > delays[g10]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let c = iscas::c17();
        let p = NbtiParams::ptm90().unwrap();
        let aged = degraded_gate_delays(&c, &[0.0; 6], &p).unwrap();
        assert_eq!(aged, nominal_gate_delays(&c));
    }

    #[test]
    fn wrong_length_is_error() {
        let c = iscas::c17();
        let p = NbtiParams::ptm90().unwrap();
        assert!(degraded_gate_delays(&c, &[0.0; 3], &p).is_err());
    }

    #[test]
    fn negative_shift_is_error() {
        let c = iscas::c17();
        let p = NbtiParams::ptm90().unwrap();
        let mut dv = vec![0.0; 6];
        dv[2] = -0.01;
        assert!(matches!(
            degraded_gate_delays(&c, &dv, &p),
            Err(StaError::InvalidShift { gate: 2, .. })
        ));
    }
}

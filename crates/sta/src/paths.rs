//! K-most-critical path enumeration.
//!
//! The internal-node-control analyses target "critical and near-critical
//! paths"; this module enumerates complete input-to-output paths in
//! decreasing delay order, using best-first search over partial paths
//! guided by the exact longest-continuation bound (so the search never
//! expands a partial path that cannot reach the top K).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use relia_netlist::{Circuit, GateId, NetDriver, NetId};

use crate::analysis::TimingReport;

/// One enumerated path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// The primary input the path launches from.
    pub start: NetId,
    /// Gates from input side to the primary output.
    pub gates: Vec<GateId>,
    /// Total path delay in picoseconds.
    pub delay_ps: f64,
    /// The primary output the path terminates at.
    pub endpoint: NetId,
}

/// A partial path under expansion (grows backwards from a PO).
struct Partial {
    /// Upper bound on the completed path delay (suffix delay + exact
    /// longest prefix through the current net).
    bound: f64,
    /// Delay of the suffix accumulated so far.
    suffix: f64,
    /// Current net (the next gate to prepend drives this net).
    net: NetId,
    /// Gates accumulated so far, output side first.
    gates: Vec<GateId>,
    endpoint: NetId,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound.total_cmp(&other.bound)
    }
}

/// Enumerates the `k` longest complete paths of the analyzed circuit, in
/// decreasing delay order.
///
/// The first returned path equals [`TimingReport::critical_path`] in delay.
///
/// ```
/// use relia_netlist::iscas;
/// use relia_sta::{paths::k_critical_paths, TimingAnalysis};
///
/// let c = iscas::c17();
/// let report = TimingAnalysis::nominal(&c);
/// let top = k_critical_paths(&c, &report, 3);
/// assert_eq!(top.len(), 3);
/// assert!((top[0].delay_ps - report.max_delay_ps()).abs() < 1e-9);
/// assert!(top[0].delay_ps >= top[1].delay_ps);
/// ```
pub fn k_critical_paths(circuit: &Circuit, report: &TimingReport, k: usize) -> Vec<TimingPath> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Partial> = circuit
        .primary_outputs()
        .iter()
        .map(|&po| Partial {
            bound: report.arrival(po),
            suffix: 0.0,
            net: po,
            gates: Vec::new(),
            endpoint: po,
        })
        .collect();

    let mut out = Vec::with_capacity(k);
    while let Some(p) = heap.pop() {
        match circuit.net(p.net).driver() {
            NetDriver::PrimaryInput => {
                let mut gates = p.gates.clone();
                gates.reverse();
                out.push(TimingPath {
                    start: p.net,
                    gates,
                    delay_ps: p.suffix,
                    endpoint: p.endpoint,
                });
                if out.len() == k {
                    break;
                }
            }
            NetDriver::Gate(gid) => {
                let gate = circuit.gate(gid);
                let suffix = p.suffix + report.gate_delays()[gid.index()];
                for &input in gate.inputs() {
                    let mut gates = p.gates.clone();
                    gates.push(gid);
                    heap.push(Partial {
                        bound: suffix + report.arrival(input),
                        suffix,
                        net: input,
                        gates,
                        endpoint: p.endpoint,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TimingAnalysis;
    use relia_netlist::iscas;

    #[test]
    fn paths_come_out_sorted_and_connected() {
        let c = iscas::circuit("c432").unwrap();
        let report = TimingAnalysis::nominal(&c);
        let top = k_critical_paths(&c, &report, 10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].delay_ps >= w[1].delay_ps - 1e-9);
        }
        for path in &top {
            // Delays sum correctly.
            let sum: f64 = path
                .gates
                .iter()
                .map(|g| report.gate_delays()[g.index()])
                .sum();
            assert!((sum - path.delay_ps).abs() < 1e-6);
            // Connectivity: each gate feeds the next; the last drives the PO.
            for pair in path.gates.windows(2) {
                let out = c.gate(pair[0]).output();
                assert!(c.gate(pair[1]).inputs().contains(&out));
            }
            assert_eq!(c.gate(*path.gates.last().unwrap()).output(), path.endpoint);
            // The first gate is driven at the launching pin.
            let first = c.gate(path.gates[0]);
            assert!(first.inputs().contains(&path.start));
            assert!(matches!(
                c.net(path.start).driver(),
                NetDriver::PrimaryInput
            ));
        }
    }

    #[test]
    fn first_path_is_the_critical_path() {
        let c = iscas::circuit("c880").unwrap();
        let report = TimingAnalysis::nominal(&c);
        let top = k_critical_paths(&c, &report, 1);
        assert_eq!(top.len(), 1);
        assert!((top[0].delay_ps - report.max_delay_ps()).abs() < 1e-9);
        assert_eq!(top[0].gates.len(), report.critical_path().len());
    }

    #[test]
    fn paths_are_distinct() {
        let c = iscas::c17();
        let report = TimingAnalysis::nominal(&c);
        let top = k_critical_paths(&c, &report, 8);
        for i in 0..top.len() {
            for j in i + 1..top.len() {
                let same = top[i].gates == top[j].gates
                    && top[i].endpoint == top[j].endpoint
                    && top[i].start == top[j].start;
                assert!(!same, "paths {i} and {j} identical");
            }
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let c = iscas::c17();
        let report = TimingAnalysis::nominal(&c);
        assert!(k_critical_paths(&c, &report, 0).is_empty());
    }

    #[test]
    fn exhausts_small_circuits_gracefully() {
        // c17 has a bounded number of paths; ask for far more.
        let c = iscas::c17();
        let report = TimingAnalysis::nominal(&c);
        let all = k_critical_paths(&c, &report, 1000);
        assert!(all.len() < 1000);
        assert!(all.len() >= 6);
    }
}

//! Error type for timing analysis.

use std::error::Error;
use std::fmt;

/// Error returned by timing entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// A per-gate quantity has the wrong length.
    GateVectorMismatch {
        /// Gates in the circuit.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// A threshold shift was negative or non-finite, or exceeded the
    /// overdrive.
    InvalidShift {
        /// Index of the offending gate.
        gate: usize,
        /// The rejected value in volts.
        value: f64,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::GateVectorMismatch { expected, got } => {
                write!(
                    f,
                    "per-gate vector has {got} entries but circuit has {expected} gates"
                )
            }
            StaError::InvalidShift { gate, value } => {
                write!(f, "invalid threshold shift {value} V at gate {gate}")
            }
        }
    }
}

impl Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_counts() {
        let e = StaError::GateVectorMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
    }
}

//! Test-runner configuration (subset of `proptest::test_runner`).

/// Per-test configuration.
///
/// Only `cases` is honored. The default of 32 cases keeps debug-mode test
/// runs quick while still exercising a spread of inputs; individual tests
/// override it with `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

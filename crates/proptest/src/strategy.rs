//! Strategies: deterministic value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic generator threaded through every strategy.
///
/// xoshiro256++ seeded from the test name via FNV-1a, so each property test
/// sees its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a + SplitMix64 expansion).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `self` generates leaves; `recurse` wraps an
    /// inner strategy into a branch. `depth` bounds the nesting; the other
    /// two parameters (upstream's desired size / branch size) are accepted
    /// for source compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let leaf = base.clone();
            // Mix leaves back in so generated sizes vary below the cap.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.below(4) == 0 {
                    leaf.sample(rng)
                } else {
                    branch.sample(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The [`crate::prop_oneof!`] combinator: uniform choice between boxed
/// strategies.
#[derive(Clone)]
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive.
    hi: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// String "regex" strategies: the pattern is ignored; arbitrary printable
/// text (occasionally with newlines and parens/commas so parser fuzzing
/// still sees structure-adjacent garbage) of length 0–120 is generated.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(121) as usize;
        (0..len)
            .map(|_| {
                match rng.below(20) {
                    0 => '\n',
                    1 => '(',
                    2 => ')',
                    3 => ',',
                    4 => '=',
                    // Printable ASCII 0x20..=0x7E.
                    _ => char::from(0x20 + rng.below(95) as u8),
                }
            })
            .collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Offline stand-in for the `proptest` crate.
//!
//! The public registry is unreachable from this build environment, so the
//! workspace vendors the subset of the proptest 1.x API its test suites
//! use: the [`proptest!`] macro, `prop_assert*` macros, range / tuple /
//! collection / string strategies, `prop_map`, `prop_oneof!`,
//! `prop_recursive`, and [`ProptestConfig`].
//!
//! Semantics: every test function runs `config.cases` deterministic random
//! cases (seeded from the test name, so runs are reproducible). There is no
//! shrinking — a failing case reports its case index and message instead.
//! String strategies ignore the regex pattern and generate arbitrary
//! printable text of bounded length, which preserves the workspace's
//! "parser never panics on garbage" intent without a regex engine.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
pub use test_runner::ProptestConfig;

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias letting `prop::collection::vec(...)` style paths resolve.
    pub use crate as prop;
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]   // optional
///     /// docs…
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     …
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}: {}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! Satellite guarantee: a fleet summary is a pure function of
//! `(spec, seed, chunk size)` — the worker count must not perturb a bit.

use proptest::prelude::*;
use relia_fleet::{run_fleet, FleetOptions, FleetSpec, FleetSummary};

fn spec_with(seed: u64, samples: usize, correlation: f64, rate_sigma: f64) -> FleetSpec {
    let mut spec = FleetSpec::paper_defaults().expect("defaults build");
    spec.seed = seed;
    spec.samples = samples;
    spec.correlation = correlation;
    spec.rate_sigma = rate_sigma;
    spec
}

/// Every float in the summary, as IEEE-754 bit patterns — "equal" below
/// means *identical bytes*, not approximately equal.
fn summary_bits(s: &FleetSummary) -> Vec<u64> {
    let mut bits = vec![s.samples, s.seed, s.guardband.to_bits()];
    for p in &s.points {
        bits.extend([
            p.time.0.to_bits(),
            p.mean.to_bits(),
            p.std_dev.to_bits(),
            p.p50.to_bits(),
            p.p90.to_bits(),
            p.p99.to_bits(),
            p.yield_fraction.to_bits(),
        ]);
    }
    bits.extend([
        s.lifetime.p01.to_bits(),
        s.lifetime.p10.to_bits(),
        s.lifetime.p50.to_bits(),
    ]);
    bits
}

fn run_with_workers(spec: &FleetSpec, workers: usize, chunk: usize) -> FleetSummary {
    run_fleet(
        spec,
        &FleetOptions {
            workers,
            chunk,
            ..FleetOptions::default()
        },
    )
    .expect("fleet run")
    .summary
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical seeds give bit-identical summaries on 1, 3, and 8 workers.
    #[test]
    fn summaries_are_bit_identical_across_thread_counts(
        seed in 0u64..u64::MAX,
        samples in 1usize..1500,
        correlation in -1.0f64..1.0,
        rate_sigma in 0.0f64..0.5,
    ) {
        let spec = spec_with(seed, samples, correlation, rate_sigma);
        let serial = run_with_workers(&spec, 1, 256);
        let mid = run_with_workers(&spec, 3, 256);
        let wide = run_with_workers(&spec, 8, 256);
        prop_assert_eq!(summary_bits(&serial), summary_bits(&mid));
        prop_assert_eq!(summary_bits(&serial), summary_bits(&wide));
    }

    /// Different seeds actually change the drawn fleet (the determinism
    /// above is not vacuous).
    #[test]
    fn different_seeds_change_the_summary(seed in 0u64..u64::MAX) {
        let a = run_with_workers(&spec_with(seed, 600, -0.4, 0.2), 2, 128);
        let b = run_with_workers(&spec_with(seed ^ 0x9E37_79B9, 600, -0.4, 0.2), 2, 128);
        prop_assert_ne!(summary_bits(&a), summary_bits(&b));
    }
}

#[test]
fn repeated_runs_are_bit_identical_even_with_default_worker_count() {
    let spec = spec_with(0xF1EE7, 5_000, -0.4, 0.08);
    let a = run_with_workers(&spec, 0, 0);
    let b = run_with_workers(&spec, 0, 0);
    assert_eq!(summary_bits(&a), summary_bits(&b));
}

//! Checkpoint/resume and cancellation behaviour of the fleet engine, end
//! to end through `run_fleet`.

use relia_core::CancelToken;
use relia_fleet::{run_fleet, FleetError, FleetOptions, FleetSpec};
use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "relia_fleet_resume_{}_{name}.ckpt",
        std::process::id()
    ));
    p
}

fn spec(samples: usize) -> FleetSpec {
    let mut s = FleetSpec::paper_defaults().expect("defaults build");
    s.samples = samples;
    s.seed = 0xDEC0DE;
    s
}

#[test]
fn second_run_resumes_every_chunk_and_matches_exactly() {
    let path = tmp("full");
    let _ = fs::remove_file(&path);
    let spec = spec(1_000);
    let opts = FleetOptions {
        workers: 2,
        chunk: 128,
        checkpoint: Some(path.clone()),
        cancel: None,
        trace: None,
    };
    let first = run_fleet(&spec, &opts).expect("first run");
    assert_eq!(first.metrics.resumed_chunks, 0);
    assert_eq!(first.metrics.executed_chunks, first.metrics.total_chunks);

    let second = run_fleet(&spec, &opts).expect("resumed run");
    assert_eq!(second.metrics.executed_chunks, 0);
    assert_eq!(second.metrics.resumed_chunks, second.metrics.total_chunks);
    assert_eq!(first.summary, second.summary);
    let _ = fs::remove_file(&path);
}

#[test]
fn corrupted_chunk_is_recomputed_without_losing_the_rest() {
    let path = tmp("salvage");
    let _ = fs::remove_file(&path);
    let spec = spec(1_000);
    let opts = FleetOptions {
        workers: 1,
        chunk: 128,
        checkpoint: Some(path.clone()),
        cancel: None,
        trace: None,
    };
    let first = run_fleet(&spec, &opts).expect("first run");

    // Tear one record the way a crash mid-append would.
    let text = fs::read_to_string(&path).expect("read checkpoint");
    let mut lines: Vec<&str> = text.lines().collect();
    let torn = &lines[2][..lines[2].len() / 2];
    lines[2] = torn;
    fs::write(&path, lines.join("\n")).expect("rewrite checkpoint");

    let second = run_fleet(&spec, &opts).expect("salvage run");
    assert_eq!(second.metrics.executed_chunks, 1);
    assert_eq!(
        second.metrics.resumed_chunks,
        second.metrics.total_chunks - 1
    );
    assert_eq!(second.metrics.salvaged_skips, 1);
    assert_eq!(first.summary, second.summary);
    let _ = fs::remove_file(&path);
}

#[test]
fn changing_the_spec_rejects_the_old_checkpoint() {
    let path = tmp("fingerprint");
    let _ = fs::remove_file(&path);
    let a = spec(1_000);
    let opts = FleetOptions {
        workers: 1,
        chunk: 128,
        checkpoint: Some(path.clone()),
        cancel: None,
        trace: None,
    };
    run_fleet(&a, &opts).expect("first run");

    let mut b = a.clone();
    b.guardband = 0.1;
    let err = run_fleet(&b, &opts).expect_err("fingerprint mismatch");
    assert!(matches!(err, FleetError::Checkpoint(_)), "got {err}");

    // A different chunk size is a different run too.
    let err = run_fleet(
        &a,
        &FleetOptions {
            chunk: 64,
            ..opts.clone()
        },
    )
    .expect_err("chunk size mismatch");
    assert!(matches!(err, FleetError::Checkpoint(_)), "got {err}");
    let _ = fs::remove_file(&path);
}

#[test]
fn cancellation_mid_run_checkpoints_progress_and_resume_completes() {
    let path = tmp("cancel");
    let _ = fs::remove_file(&path);
    // Big enough that a short delay cancels it mid-flight on one worker.
    let spec = spec(200_000);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let opts = FleetOptions {
        workers: 1,
        chunk: 512,
        checkpoint: Some(path.clone()),
        cancel: Some(token),
        trace: None,
    };
    let err = run_fleet(&spec, &opts).expect_err("must cancel");
    assert!(matches!(err, FleetError::Cancelled), "got {err}");
    canceller.join().expect("canceller thread");

    // Resume with a fresh token: completes, and the summary is the same
    // bytes a never-interrupted run produces.
    let resumed = run_fleet(
        &spec,
        &FleetOptions {
            cancel: None,
            trace: None,
            ..opts.clone()
        },
    )
    .expect("resumed run");
    assert_eq!(
        resumed.metrics.resumed_chunks + resumed.metrics.executed_chunks,
        resumed.metrics.total_chunks
    );

    let clean = run_fleet(
        &spec,
        &FleetOptions {
            workers: 4,
            chunk: 512,
            checkpoint: None,
            cancel: None,
            trace: None,
        },
    )
    .expect("clean run");
    assert_eq!(resumed.summary, clean.summary);
    let _ = fs::remove_file(&path);
}

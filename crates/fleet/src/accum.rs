//! Streaming accumulators: fixed-range histograms and moment sums that
//! merge **associatively and in deterministic order**.
//!
//! The fleet engine accumulates per chunk and merges chunk accumulators in
//! chunk-index order, so every derived statistic (mean, deviation,
//! quantile, yield) is a pure function of `(spec, seed, chunk size)` — the
//! worker count and scheduling order cannot perturb a single bit.

use crate::error::FleetError;

/// Bins per histogram. Fixed (not configurable) so checkpoint layouts and
/// fingerprints stay stable.
pub const HIST_BINS: usize = 512;

/// A fixed-range histogram with explicit under/overflow counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// Samples below `lo`.
    pub below: u64,
    /// Samples at/above `hi` (NaN counts here too, defensively).
    pub above: u64,
    /// [`HIST_BINS`] equal-width bin counts.
    pub bins: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Histogram {
            lo,
            hi,
            below: 0,
            above: 0,
            bins: vec![0; HIST_BINS],
        }
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.below += 1;
        } else if v < self.hi {
            let w = (self.hi - self.lo) / HIST_BINS as f64;
            let idx = (((v - self.lo) / w) as usize).min(HIST_BINS - 1);
            self.bins[idx] += 1;
        } else {
            // At/above the top edge — and NaN, which fails both compares.
            self.above += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.below + self.above + self.bins.iter().sum::<u64>()
    }

    /// Adds `other`'s counts into this histogram.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Internal`] when the ranges differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), FleetError> {
        if self.lo.to_bits() != other.lo.to_bits() || self.hi.to_bits() != other.hi.to_bits() {
            return Err(FleetError::Internal(
                "merging histograms with different ranges".to_owned(),
            ));
        }
        self.below += other.below;
        self.above += other.above;
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        Ok(())
    }

    /// The `p`-quantile by linear interpolation within the containing bin.
    ///
    /// Underflow mass resolves to `lo`, overflow mass to `hi`, so the
    /// result is always finite and monotone non-decreasing in `p`. Returns
    /// `lo` for an empty histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return self.lo;
        }
        let p = p.clamp(0.0, 1.0);
        let target = p * total as f64;
        let mut cum = self.below as f64;
        if cum >= target && self.below > 0 {
            return self.lo;
        }
        let w = (self.hi - self.lo) / HIST_BINS as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let next = cum + b as f64;
            if next >= target {
                let frac = ((target - cum) / b as f64).clamp(0.0, 1.0);
                return self.lo + w * (i as f64 + frac);
            }
            cum = next;
        }
        self.hi
    }

    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(self.below);
        out.push(self.above);
        out.extend_from_slice(&self.bins);
    }

    fn pull_words(&mut self, words: &mut impl Iterator<Item = u64>) -> Option<()> {
        self.below = words.next()?;
        self.above = words.next()?;
        for b in self.bins.iter_mut() {
            *b = words.next()?;
        }
        Some(())
    }
}

/// Running first and second moments (plain sums: merged in fixed order,
/// bit-deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    /// Sample count.
    pub count: u64,
    /// Σx.
    pub sum: f64,
    /// Σx².
    pub sum_sq: f64,
}

impl Moments {
    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Adds `other` into this accumulator.
    pub fn merge(&mut self, other: &Moments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (n divisor, 0 when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }
}

/// Per-evaluation-time accumulator: delay-degradation histogram, moments,
/// and the within-guardband count.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeAccum {
    /// Delay-degradation-fraction histogram over [`FRAC_LO`, `FRAC_HI`).
    pub frac: Histogram,
    /// Moments of the degradation fraction.
    pub moments: Moments,
    /// Samples whose degradation stayed within the guardband.
    pub ok: u64,
}

/// Degradation-fraction histogram range (0 % – 50 % delay growth).
pub const FRAC_LO: f64 = 0.0;
/// Upper edge of the degradation-fraction histogram.
pub const FRAC_HI: f64 = 0.5;
/// Lifetime histogram range in `log10(seconds)`: 1 s … 10^14 s.
pub const LIFE_LOG10_LO: f64 = 0.0;
/// Upper edge of the lifetime histogram (`log10` seconds).
pub const LIFE_LOG10_HI: f64 = 14.0;

impl TimeAccum {
    fn new() -> Self {
        TimeAccum {
            frac: Histogram::new(FRAC_LO, FRAC_HI),
            moments: Moments::default(),
            ok: 0,
        }
    }
}

/// Everything one chunk of samples contributes: per-time accumulators plus
/// the projected-lifetime histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkAccum {
    /// Samples folded into this accumulator.
    pub samples: u64,
    /// One accumulator per evaluation time, in spec order.
    pub per_time: Vec<TimeAccum>,
    /// Histogram of `log10(projected failure time in seconds)`.
    pub lifetime_log10: Histogram,
}

impl ChunkAccum {
    /// An empty accumulator for `times` evaluation points.
    pub fn new(times: usize) -> Self {
        ChunkAccum {
            samples: 0,
            per_time: (0..times).map(|_| TimeAccum::new()).collect(),
            lifetime_log10: Histogram::new(LIFE_LOG10_LO, LIFE_LOG10_HI),
        }
    }

    /// Folds `other` into this accumulator (callers merge in chunk order).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Internal`] on a layout mismatch.
    pub fn merge(&mut self, other: &ChunkAccum) -> Result<(), FleetError> {
        if self.per_time.len() != other.per_time.len() {
            return Err(FleetError::Internal(
                "merging chunk accumulators with different layouts".to_owned(),
            ));
        }
        self.samples += other.samples;
        for (a, b) in self.per_time.iter_mut().zip(&other.per_time) {
            a.frac.merge(&b.frac)?;
            a.moments.merge(&b.moments);
            a.ok += b.ok;
        }
        self.lifetime_log10.merge(&other.lifetime_log10)
    }

    /// Packs the accumulator into `u64` words (floats as IEEE-754 bits) —
    /// the checkpoint wire format, exact by construction.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(1 + self.per_time.len() * (HIST_BINS + 6) + HIST_BINS + 2);
        out.push(self.samples);
        for t in &self.per_time {
            t.frac.push_words(&mut out);
            out.push(t.moments.count);
            out.push(t.moments.sum.to_bits());
            out.push(t.moments.sum_sq.to_bits());
            out.push(t.ok);
        }
        self.lifetime_log10.push_words(&mut out);
        out
    }

    /// Rebuilds an accumulator for `times` evaluation points from its word
    /// encoding. `None` when the word count does not match the layout.
    pub fn from_words(times: usize, words: &[u64]) -> Option<Self> {
        let expect = 1 + times * (HIST_BINS + 2 + 4) + HIST_BINS + 2;
        if words.len() != expect {
            return None;
        }
        let mut it = words.iter().copied();
        let mut acc = ChunkAccum::new(times);
        acc.samples = it.next()?;
        for t in acc.per_time.iter_mut() {
            t.frac.pull_words(&mut it)?;
            t.moments.count = it.next()?;
            t.moments.sum = f64::from_bits(it.next()?);
            t.moments.sum_sq = f64::from_bits(it.next()?);
            t.ok = it.next()?;
        }
        acc.lifetime_log10.pull_words(&mut it)?;
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new(0.0, 1.0);
        let mut x = 0.013_f64;
        for _ in 0..10_000 {
            x = (x * 997.0 + 0.119).fract();
            h.record(x);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at p={}", i as f64 / 100.0);
            assert!((0.0..=1.0).contains(&q));
            prev = q;
        }
        // Roughly uniform data: the median sits near 0.5.
        assert!((h.quantile(0.5) - 0.5).abs() < 0.05);
    }

    #[test]
    fn histogram_routes_out_of_range_mass() {
        let mut h = Histogram::new(0.0, 1.0);
        h.record(-1.0);
        h.record(2.0);
        h.record(f64::NAN);
        h.record(0.25);
        assert_eq!(h.below, 1);
        assert_eq!(h.above, 2);
        assert_eq!(h.count(), 4);
        assert!(h.merge(&Histogram::new(0.0, 2.0)).is_err());
    }

    #[test]
    fn moments_match_direct_computation() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let mut m = Moments::default();
        for v in vals {
            m.record(v);
        }
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.std_dev() - (1.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn chunk_accum_words_round_trip_exactly() {
        let mut acc = ChunkAccum::new(3);
        let mut rng = crate::rng::SplitMix64::new(9);
        for _ in 0..500 {
            acc.samples += 1;
            for t in acc.per_time.iter_mut() {
                let v = rng.next_f64() * 0.2;
                t.frac.record(v);
                t.moments.record(v);
                if v < 0.1 {
                    t.ok += 1;
                }
            }
            acc.lifetime_log10.record(rng.next_f64() * 14.0);
        }
        let words = acc.to_words();
        let back = ChunkAccum::from_words(3, &words).expect("layout matches");
        assert_eq!(acc, back);
        assert!(ChunkAccum::from_words(2, &words).is_none());
        assert!(ChunkAccum::from_words(3, &words[1..]).is_none());
    }

    #[test]
    fn merge_is_order_sensitive_only_in_float_sums() {
        // Counts merge associatively; merging A into B equals B into A for
        // every integer series (the engine still fixes the order so float
        // sums are reproducible too).
        let mut a = ChunkAccum::new(1);
        let mut b = ChunkAccum::new(1);
        a.samples = 3;
        b.samples = 4;
        a.per_time[0].frac.record(0.1);
        b.per_time[0].frac.record(0.2);
        let mut ab = a.clone();
        ab.merge(&b).expect("layouts match");
        let mut ba = b.clone();
        ba.merge(&a).expect("layouts match");
        assert_eq!(ab.samples, ba.samples);
        assert_eq!(ab.per_time[0].frac, ba.per_time[0].frac);
    }
}

//! The fleet Monte Carlo engine.
//!
//! A fleet run evaluates the NBTI delay-degradation model for thousands of
//! correlated variation samples. The expensive, *sample-independent* work —
//! the Arrhenius exponentials, the AC-recursion prefix, and the equivalent
//! stress-time transform — is hoisted once per stress point into a
//! [`HoistedStress`] ([`relia_core::NbtiModel::hoist`]); the per-sample
//! loop is then a handful of flops on a structure-of-arrays accumulator.
//!
//! Samples are drawn in fixed-size chunks, each chunk from its own
//! [`SplitMix64`] stream derived from `(seed, chunk index)`, and chunk
//! accumulators merge in index order — so the summary is bit-identical for
//! any worker count, and completed chunks checkpoint to disk for resume.

use crate::accum::ChunkAccum;
use crate::checkpoint::{self, CheckpointWriter};
use crate::error::FleetError;
use crate::rng::SplitMix64;
use crate::spec::FleetSpec;
use relia_core::{
    CancelToken, HoistedStress, NbtiModel, Seconds, VariationKernel, Volts, VthDistribution,
};
use relia_jobs::{default_workers, run_ordered_with, JobOutcome, MetricsSnapshot};
use relia_obs::{fmt_ns, HistSnapshot, LatencyHist, Tracer};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Default samples per chunk: small enough for responsive cancellation and
/// cheap checkpoints, large enough to amortize scheduling.
pub const DEFAULT_CHUNK: usize = 2048;

/// How many samples the inner loop draws between cancellation polls.
const CANCEL_POLL_EVERY: usize = 256;

/// Knobs for one engine invocation (everything *outside* the statistical
/// spec: parallelism, chunking, persistence, cancellation).
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Samples per chunk; 0 means [`DEFAULT_CHUNK`]. Part of the run
    /// fingerprint — resuming requires the same chunk size.
    pub chunk: usize,
    /// Checkpoint file to append completed chunks to (and resume from).
    pub checkpoint: Option<PathBuf>,
    /// External cancellation token; the run stops at the next chunk/poll
    /// boundary once cancelled.
    pub cancel: Option<CancelToken>,
    /// Span ring recording `fleet_hoist`, per-chunk `fleet_chunk`, and
    /// `fleet_merge` spans — hot-path attribution for `relia fleet
    /// --trace`. The chunk-duration histogram is collected regardless.
    pub trace: Option<Arc<Tracer>>,
}

/// Fleet statistics at one evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// Evaluation time.
    pub time: Seconds,
    /// Mean delay-degradation fraction across the fleet.
    pub mean: f64,
    /// Standard deviation of the degradation fraction.
    pub std_dev: f64,
    /// Median degradation fraction.
    pub p50: f64,
    /// 90th-percentile degradation fraction.
    pub p90: f64,
    /// 99th-percentile degradation fraction.
    pub p99: f64,
    /// Fraction of devices still within the delay guardband.
    pub yield_fraction: f64,
}

/// Projected-lifetime percentiles, in seconds, from the `t^(1/4)` power-law
/// extrapolation anchored at the last evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSummary {
    /// 1st-percentile (worst-device) lifetime.
    pub p01: f64,
    /// 10th-percentile lifetime.
    pub p10: f64,
    /// Median lifetime.
    pub p50: f64,
}

/// The statistical outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Devices sampled.
    pub samples: u64,
    /// Seed the run was drawn from.
    pub seed: u64,
    /// Delay guardband the yield numbers refer to.
    pub guardband: f64,
    /// One entry per evaluation time, in spec order.
    pub points: Vec<FleetPoint>,
    /// Lifetime projection across the fleet.
    pub lifetime: LifetimeSummary,
}

/// Operational counters for one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Chunks the sample count decomposed into.
    pub total_chunks: u64,
    /// Chunks actually evaluated this run.
    pub executed_chunks: u64,
    /// Chunks restored from the checkpoint instead of recomputed.
    pub resumed_chunks: u64,
    /// Corrupt checkpoint lines skipped during salvage.
    pub salvaged_skips: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Devices sampled.
    pub samples: u64,
    /// Wall-clock seconds spent in the sampling phase.
    pub execute_secs: f64,
    /// Per-chunk evaluation latency (executed chunks only; resumed chunks
    /// cost no sampling time).
    pub chunk_seconds: HistSnapshot,
}

impl FleetMetrics {
    /// The counters, gauges, and histograms of this run with stable
    /// names, mergeable with other [`MetricsSnapshot`]s.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("fleet_chunks_total", self.total_chunks),
                ("fleet_chunks_executed", self.executed_chunks),
                ("fleet_chunks_resumed", self.resumed_chunks),
                ("fleet_checkpoint_lines_skipped", self.salvaged_skips),
                ("fleet_workers", self.workers),
                ("fleet_samples", self.samples),
            ],
            gauges: vec![("fleet_execute_secs", self.execute_secs)],
            histograms: vec![("fleet_chunk_seconds", self.chunk_seconds.clone())],
        }
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet: {} samples in {} chunks ({} executed, {} resumed) on {} workers in {:.3}s",
            self.samples,
            self.total_chunks,
            self.executed_chunks,
            self.resumed_chunks,
            self.workers,
            self.execute_secs
        )?;
        if self.chunk_seconds.count > 0 {
            write!(
                f,
                "\nchunk latency: p50 {} / p90 {} / p99 {} over {} chunks",
                fmt_ns(self.chunk_seconds.p50()),
                fmt_ns(self.chunk_seconds.p90()),
                fmt_ns(self.chunk_seconds.p99()),
                self.chunk_seconds.count
            )?;
        }
        Ok(())
    }
}

/// Everything [`run_fleet`] returns.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The fleet statistics.
    pub summary: FleetSummary,
    /// Operational counters.
    pub metrics: FleetMetrics,
}

/// The prepared, sample-independent state of a fleet study: one
/// [`HoistedStress`] per evaluation time plus the variation constants.
///
/// Public so benchmarks and the batch/scalar equivalence tests can drive
/// the hoisted path directly.
pub struct FleetEvaluator {
    hoisted: Vec<HoistedStress>,
    times: Vec<Seconds>,
    dist: VthDistribution,
    unit: VthDistribution,
    mean: f64,
    sigma: f64,
    corr: f64,
    corr_ortho: f64,
    rate_sigma: f64,
    vdd: f64,
    alpha: f64,
    guardband: f64,
    t_ref: f64,
}

impl FleetEvaluator {
    /// Validates `spec` and hoists the per-stress-point model terms —
    /// everything expensive happens here, **once**, not per sample.
    ///
    /// # Errors
    ///
    /// [`FleetError::Invalid`] for a bad spec, [`FleetError::Model`] when
    /// the model rejects it (including a Vth distribution whose ±3.5σ
    /// clamp range escapes `[0, vdd)`).
    pub fn prepare(spec: &FleetSpec) -> Result<Self, FleetError> {
        spec.validate()?;
        let model = NbtiModel::ptm90()?;
        let schedule = spec.schedule()?;
        let stress = spec.stress()?;
        let mut hoisted = Vec::with_capacity(spec.times.len());
        for &t in &spec.times {
            hoisted.push(model.hoist(t, &schedule, &stress)?);
        }
        // The Box–Muller draw clamps z to ±3.5, so these two extremes
        // bound every vth0 the sampler can produce.
        let mean = spec.dist.mean().0;
        let sigma = spec.dist.sigma().0;
        if let Some(h) = hoisted.first() {
            h.check_vth0(Volts(mean - 3.5 * sigma))?;
            h.check_vth0(Volts(mean + 3.5 * sigma))?;
        }
        let kernel = VariationKernel::new(model.params());
        // A unit-normal via the same clamped Box–Muller the distribution
        // API provides: N(1, 1) shifted back to zero mean.
        let unit = VthDistribution::new(Volts(1.0), Volts(1.0))?;
        Ok(FleetEvaluator {
            hoisted,
            times: spec.times.clone(),
            dist: spec.dist,
            unit,
            mean,
            sigma,
            corr: spec.correlation,
            corr_ortho: (1.0 - spec.correlation * spec.correlation).max(0.0).sqrt(),
            rate_sigma: spec.rate_sigma,
            vdd: kernel.vdd,
            alpha: kernel.alpha,
            guardband: spec.guardband,
            t_ref: spec.times.last().map_or(0.0, |t| t.0),
        })
    }

    /// The evaluation times this evaluator was prepared for.
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// Draws one device and folds it into `acc`. Consumes exactly four
    /// uniform variates: two for the time-zero Vth, two for the
    /// degradation-rate multiplier.
    pub fn sample_into(&self, rng: &mut SplitMix64, acc: &mut ChunkAccum) {
        let u1 = rng.next_f64();
        let u2 = rng.next_f64();
        let vth0 = self.dist.sample_box_muller(u1, u2).0;
        // Standardized time-zero deviation, reused as the correlated part
        // of the rate draw (Hassan & Roy: fast devices age faster, which a
        // negative correlation expresses).
        let z1 = if self.sigma > 0.0 {
            (vth0 - self.mean) / self.sigma
        } else {
            0.0
        };
        let u3 = rng.next_f64();
        let u4 = rng.next_f64();
        let z2 = self.unit.sample_box_muller(u3, u4).0 - 1.0;
        let m = (self.rate_sigma * (self.corr * z1 + self.corr_ortho * z2)).exp();
        let od = self.vdd - vth0;

        acc.samples += 1;
        let mut dv_ref = 0.0;
        // Bounded fan-in (MAX_TIMES = 16 hoisted terms, enforced at spec
        // validation); cancellation is polled per sample in run_chunk.
        for (h, t) in self.hoisted.iter().zip(acc.per_time.iter_mut()) {
            let dv = h.delta_vth_at(vth0) * m; // relia-lint: allow(unpolled-loop)
                                               // First-order alpha-power delay growth: Δd/d = α·ΔVth/overdrive.
            let frac = self.alpha * dv / od;
            t.frac.record(frac);
            t.moments.record(frac);
            if frac <= self.guardband {
                t.ok += 1;
            }
            dv_ref = dv;
        }
        // ΔVth ∝ t^(1/4) ⇒ the guardband is crossed at
        // t_fail = t_ref · (ΔVth_allowed / ΔVth(t_ref))⁴.
        let dv_allow = self.guardband * od / self.alpha;
        let t_fail = if dv_ref > 0.0 {
            self.t_ref * (dv_allow / dv_ref).powi(4)
        } else {
            f64::INFINITY
        };
        acc.lifetime_log10.record(t_fail.log10());
    }

    /// Evaluates chunk `index` of `[start, start + len)` samples on its own
    /// derived stream. Returns `None` if `cancel` fired mid-chunk.
    pub fn run_chunk(
        &self,
        seed: u64,
        index: usize,
        len: usize,
        cancel: &CancelToken,
    ) -> Option<ChunkAccum> {
        let mut rng = SplitMix64::stream(seed, index as u64);
        let mut acc = ChunkAccum::new(self.times.len());
        for drawn in 0..len {
            if drawn % CANCEL_POLL_EVERY == 0 && cancel.is_cancelled() {
                return None;
            }
            self.sample_into(&mut rng, &mut acc);
        }
        Some(acc)
    }

    /// Reduces a fully merged accumulator to the fleet summary. Callers
    /// that drive [`run_chunk`](Self::run_chunk) themselves (e.g. a server
    /// loop interleaving deadline checks) merge chunks **in index order**
    /// and finish here; the result is then byte-identical to
    /// [`run_fleet`]'s at the same chunk size.
    pub fn summarize(&self, spec: &FleetSpec, total: &ChunkAccum) -> FleetSummary {
        let points = total
            .per_time
            .iter()
            .zip(&self.times)
            .map(|(t, &time)| FleetPoint {
                time,
                mean: t.moments.mean(),
                std_dev: t.moments.std_dev(),
                p50: t.frac.quantile(0.50),
                p90: t.frac.quantile(0.90),
                p99: t.frac.quantile(0.99),
                yield_fraction: if total.samples == 0 {
                    0.0
                } else {
                    t.ok as f64 / total.samples as f64
                },
            })
            .collect();
        let life = &total.lifetime_log10;
        let lifetime = LifetimeSummary {
            p01: 10.0_f64.powf(life.quantile(0.01)),
            p10: 10.0_f64.powf(life.quantile(0.10)),
            p50: 10.0_f64.powf(life.quantile(0.50)),
        };
        FleetSummary {
            samples: total.samples,
            seed: spec.seed,
            guardband: spec.guardband,
            points,
            lifetime,
        }
    }
}

/// Runs a fleet study: chunked, parallel, checkpointed, cancellable.
///
/// The summary depends only on `(spec, chunk size)` — never on the worker
/// count or scheduling order.
///
/// # Errors
///
/// [`FleetError::Invalid`]/[`FleetError::Model`] for a bad spec,
/// [`FleetError::Cancelled`] when the token fires before completion,
/// [`FleetError::Checkpoint`]/[`FleetError::Io`] for resume problems.
pub fn run_fleet(spec: &FleetSpec, opts: &FleetOptions) -> Result<FleetOutcome, FleetError> {
    let trace = opts.trace.as_deref();
    let hoist_span = trace.map(|t| t.span("fleet_hoist"));
    let eval = FleetEvaluator::prepare(spec)?;
    drop(hoist_span);
    let chunk = if opts.chunk == 0 {
        DEFAULT_CHUNK
    } else {
        opts.chunk
    };
    let total_chunks = spec.samples.div_ceil(chunk);
    let fingerprint = spec.fingerprint(chunk);

    let (mut done, salvaged_skips) = match &opts.checkpoint {
        Some(path) => checkpoint::load(path, fingerprint, spec.times.len())?,
        None => (BTreeMap::new(), 0),
    };
    done.retain(|&i, _| i < total_chunks);
    let resumed_chunks = done.len();
    let todo: Vec<usize> = (0..total_chunks)
        .filter(|i| !done.contains_key(i))
        .collect();

    let mut writer = match &opts.checkpoint {
        Some(path) if resumed_chunks > 0 => Some(CheckpointWriter::append(path)?),
        Some(path) => Some(CheckpointWriter::create(path, fingerprint)?),
        None => None,
    };

    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };
    let cancel = opts.cancel.clone().unwrap_or_default();

    let started = Instant::now();
    let chunk_hist = LatencyHist::new();
    let mut write_err: Option<FleetError> = None;
    let outcomes = run_ordered_with(
        &todo,
        workers,
        |_, &index| {
            let start = index * chunk;
            let len = chunk.min(spec.samples - start);
            let span = trace.map(|t| t.span("fleet_chunk"));
            let t_chunk = Instant::now();
            let acc = eval.run_chunk(spec.seed, index, len, &cancel);
            chunk_hist.record(t_chunk.elapsed());
            drop(span);
            acc
        },
        |slot, outcome| {
            if let JobOutcome::Completed(Some(acc)) = outcome {
                if let (Some(w), None) = (writer.as_mut(), write_err.as_ref()) {
                    if let Err(e) = w.record(todo[slot], acc) {
                        write_err = Some(e);
                    }
                }
            }
        },
    );
    let execute_secs = started.elapsed().as_secs_f64();
    if let Some(e) = write_err {
        return Err(e);
    }

    for (slot, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            JobOutcome::Completed(Some(acc)) => {
                done.insert(todo[slot], acc);
            }
            JobOutcome::Completed(None) => return Err(FleetError::Cancelled),
            other => {
                return Err(FleetError::Internal(format!(
                    "chunk {} did not complete: {other:?}",
                    todo[slot]
                )))
            }
        }
    }
    if cancel.is_cancelled() {
        return Err(FleetError::Cancelled);
    }

    // Merge strictly in chunk-index order (BTreeMap iteration) so the
    // float sums are the same bytes no matter how chunks were scheduled.
    let merge_span = trace.map(|t| t.span("fleet_merge"));
    let mut total = ChunkAccum::new(spec.times.len());
    for acc in done.values() {
        total.merge(acc)?;
    }
    drop(merge_span);
    if total.samples != spec.samples as u64 {
        return Err(FleetError::Internal(format!(
            "merged {} samples, expected {}",
            total.samples, spec.samples
        )));
    }

    let summary = eval.summarize(spec, &total);
    let metrics = FleetMetrics {
        total_chunks: total_chunks as u64,
        executed_chunks: todo.len() as u64,
        resumed_chunks: resumed_chunks as u64,
        salvaged_skips: salvaged_skips as u64,
        workers: workers as u64,
        samples: total.samples,
        execute_secs,
        chunk_seconds: chunk_hist.snapshot(),
    };
    Ok(FleetOutcome { summary, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(samples: usize) -> FleetSpec {
        let mut spec = FleetSpec::paper_defaults().expect("defaults build");
        spec.samples = samples;
        spec
    }

    #[test]
    fn summary_is_sane_on_defaults() {
        let spec = small_spec(800);
        let out = run_fleet(&spec, &FleetOptions::default()).expect("run");
        assert_eq!(out.summary.samples, 800);
        assert_eq!(out.summary.points.len(), 3);
        for p in &out.summary.points {
            assert!(p.mean > 0.0 && p.mean < 0.5, "mean {}", p.mean);
            assert!(p.std_dev >= 0.0);
            assert!(p.p50 <= p.p90 && p.p90 <= p.p99, "percentiles not ordered");
            assert!((0.0..=1.0).contains(&p.yield_fraction));
        }
        // Degradation grows with time, yield shrinks.
        let means: Vec<f64> = out.summary.points.iter().map(|p| p.mean).collect();
        assert!(means.windows(2).all(|w| w[0] <= w[1]));
        let yields: Vec<f64> = out
            .summary
            .points
            .iter()
            .map(|p| p.yield_fraction)
            .collect();
        assert!(yields.windows(2).all(|w| w[0] >= w[1]));
        // Lifetime percentiles are finite, positive, ordered.
        let l = &out.summary.lifetime;
        assert!(l.p01.is_finite() && l.p01 > 0.0);
        assert!(l.p01 <= l.p10 && l.p10 <= l.p50);
    }

    #[test]
    fn hoisted_samples_match_scalar_model_exactly() {
        // One device drawn by the evaluator must equal the scalar
        // delta_vth_with_vth0 path (times the rate multiplier) to the bit.
        let mut spec = small_spec(1);
        spec.rate_sigma = 0.0;
        let eval = FleetEvaluator::prepare(&spec).expect("prepare");
        let model = NbtiModel::ptm90().expect("model");
        let schedule = spec.schedule().expect("schedule");
        let stress = spec.stress().expect("stress");

        let mut rng = SplitMix64::stream(spec.seed, 0);
        for _ in 0..200 {
            let u1 = rng.next_f64();
            let u2 = rng.next_f64();
            let vth0 = spec.dist.sample_box_muller(u1, u2).0;
            for (h, &t) in eval.hoisted.iter().zip(&spec.times) {
                let scalar = model
                    .delta_vth_with_vth0(t, &schedule, &stress, Volts(vth0))
                    .expect("scalar eval");
                assert_eq!(h.delta_vth_at(vth0).to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn chunk_size_is_part_of_the_contract_but_workers_are_not() {
        let spec = small_spec(700);
        let base = run_fleet(
            &spec,
            &FleetOptions {
                workers: 1,
                chunk: 128,
                ..FleetOptions::default()
            },
        )
        .expect("run");
        let wide = run_fleet(
            &spec,
            &FleetOptions {
                workers: 7,
                chunk: 128,
                ..FleetOptions::default()
            },
        )
        .expect("run");
        assert_eq!(base.summary, wide.summary);
    }

    #[test]
    fn trace_attributes_hoist_chunks_and_merge() {
        let spec = small_spec(700);
        let tracer = Arc::new(Tracer::new(64));
        let out = run_fleet(
            &spec,
            &FleetOptions {
                workers: 2,
                chunk: 128,
                trace: Some(Arc::clone(&tracer)),
                ..FleetOptions::default()
            },
        )
        .expect("run");
        let spans = tracer.recent();
        let count = |n: &str| spans.iter().filter(|s| s.name == n).count();
        assert_eq!(count("fleet_hoist"), 1);
        assert_eq!(count("fleet_chunk"), 6, "ceil(700/128) chunks");
        assert_eq!(count("fleet_merge"), 1);
        assert_eq!(out.metrics.chunk_seconds.count, 6);
        assert!(out
            .metrics
            .snapshot()
            .histogram("fleet_chunk_seconds")
            .is_some());
        let text = out.metrics.to_string();
        assert!(text.contains("chunk latency: p50 "), "{text}");
    }

    #[test]
    fn cancelled_token_aborts_the_run() {
        let spec = small_spec(5_000);
        let token = CancelToken::new();
        token.cancel();
        let err = run_fleet(
            &spec,
            &FleetOptions {
                cancel: Some(token),
                ..FleetOptions::default()
            },
        )
        .expect_err("must cancel");
        assert!(matches!(err, FleetError::Cancelled));
    }

    #[test]
    fn correlation_knob_shifts_the_spread() {
        // With a strong negative correlation, low-Vth (fast, high-overdrive)
        // devices draw larger rate multipliers, widening the degradation
        // spread versus the uncorrelated case.
        let mut anti = small_spec(4_000);
        anti.correlation = -0.9;
        anti.rate_sigma = 0.25;
        let mut uncorr = anti.clone();
        uncorr.correlation = 0.0;
        let a = run_fleet(&anti, &FleetOptions::default()).expect("run");
        let u = run_fleet(&uncorr, &FleetOptions::default()).expect("run");
        let last = a.summary.points.len() - 1;
        assert!(
            a.summary.points[last].std_dev > u.summary.points[last].std_dev,
            "anti-correlated spread {} should exceed uncorrelated {}",
            a.summary.points[last].std_dev,
            u.summary.points[last].std_dev
        );
    }
}

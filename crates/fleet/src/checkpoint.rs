//! Crash-safe fleet checkpoints: an append-only text file of completed
//! chunk accumulators, each line independently CRC-protected.
//!
//! Format (one record per line):
//!
//! ```text
//! relia-fleet-checkpoint v1 <fingerprint hex>
//! chunk <index> <crc hex> <word hex> <word hex> ...
//! ```
//!
//! The header binds the file to a `(spec, chunk size)` fingerprint; a
//! mismatch rejects the whole file. Individual chunk lines that fail their
//! CRC or parse (a torn write from a crash) are *skipped*, salvaging every
//! intact record — the engine simply recomputes the lost chunks.

use crate::accum::ChunkAccum;
use crate::error::FleetError;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

const HEADER_TAG: &str = "relia-fleet-checkpoint";
const HEADER_VERSION: &str = "v1";

/// CRC-32 (IEEE 802.3, reflected) over the raw bytes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn chunk_payload(index: usize, words: &[u64]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(words.len() * 17 + 24);
    let _ = write!(s, "{index:x}");
    for w in words {
        let _ = write!(s, " {w:x}");
    }
    s
}

/// Appends completed chunks to `path` as they arrive.
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Creates (or truncates) the checkpoint at `path` and writes the
    /// header binding it to `fingerprint`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on any filesystem failure.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Self, FleetError> {
        let mut file = File::create(path).map_err(io_err)?;
        writeln!(file, "{HEADER_TAG} {HEADER_VERSION} {fingerprint:016x}").map_err(io_err)?;
        file.flush().map_err(io_err)?;
        Ok(CheckpointWriter { file })
    }

    /// Reopens an existing checkpoint for appending (after a salvage load).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on any filesystem failure.
    pub fn append(path: &Path) -> Result<Self, FleetError> {
        let file = OpenOptions::new().append(true).open(path).map_err(io_err)?;
        Ok(CheckpointWriter { file })
    }

    /// Writes one completed chunk and flushes, so a crash immediately
    /// after still finds the record intact.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Io`] on any filesystem failure.
    pub fn record(&mut self, index: usize, acc: &ChunkAccum) -> Result<(), FleetError> {
        let payload = chunk_payload(index, &acc.to_words());
        let crc = crc32(payload.as_bytes());
        // Single write call so the line is as close to atomic as the OS gives us.
        let line = {
            let idx_end = payload.find(' ').unwrap_or(payload.len());
            format!(
                "chunk {} {crc:08x}{}\n",
                &payload[..idx_end],
                &payload[idx_end..]
            )
        };
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)
    }
}

/// Loads every intact chunk from `path`.
///
/// Returns the salvaged accumulators keyed by chunk index and the number of
/// lines that were skipped as corrupt. Missing file → empty map.
///
/// # Errors
///
/// [`FleetError::Checkpoint`] when the header is missing, malformed, or
/// fingerprint-mismatched; [`FleetError::Io`] on read failures.
pub fn load(
    path: &Path,
    fingerprint: u64,
    times: usize,
) -> Result<(BTreeMap<usize, ChunkAccum>, usize), FleetError> {
    if !path.exists() {
        return Ok((BTreeMap::new(), 0));
    }
    let file = File::open(path).map_err(io_err)?;
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(l)) => l,
        Some(Err(e)) => return Err(io_err(e)),
        None => {
            return Err(FleetError::Checkpoint(
                "checkpoint file is empty".to_owned(),
            ))
        }
    };
    let mut parts = header.split_whitespace();
    if parts.next() != Some(HEADER_TAG) || parts.next() != Some(HEADER_VERSION) {
        return Err(FleetError::Checkpoint(
            "unrecognized checkpoint header".to_owned(),
        ));
    }
    let fp = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| FleetError::Checkpoint("unreadable checkpoint fingerprint".to_owned()))?;
    if fp != fingerprint {
        return Err(FleetError::Checkpoint(format!(
            "checkpoint fingerprint {fp:016x} does not match this run ({fingerprint:016x}); \
             the spec or chunk size changed"
        )));
    }

    let mut chunks = BTreeMap::new();
    let mut skipped = 0_usize;
    for line in lines {
        let line = match line {
            Ok(l) => l,
            Err(e) => return Err(io_err(e)),
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_chunk_line(&line, times) {
            Some((index, acc)) => {
                chunks.insert(index, acc);
            }
            None => skipped += 1,
        }
    }
    Ok((chunks, skipped))
}

fn parse_chunk_line(line: &str, times: usize) -> Option<(usize, ChunkAccum)> {
    let rest = line.strip_prefix("chunk ")?;
    let mut parts = rest.split_whitespace();
    let index_str = parts.next()?;
    let crc_str = parts.next()?;
    let index = usize::from_str_radix(index_str, 16).ok()?;
    let expect_crc = u32::from_str_radix(crc_str, 16).ok()?;
    let mut words = Vec::new();
    for w in parts {
        words.push(u64::from_str_radix(w, 16).ok()?);
    }
    let payload = chunk_payload(index, &words);
    if crc32(payload.as_bytes()) != expect_crc {
        return None;
    }
    let acc = ChunkAccum::from_words(times, &words)?;
    Some((index, acc))
}

fn io_err(e: std::io::Error) -> FleetError {
    FleetError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("relia_fleet_ckpt_{}_{name}", std::process::id()));
        p
    }

    fn sample_acc(times: usize, salt: u64) -> ChunkAccum {
        let mut acc = ChunkAccum::new(times);
        let mut rng = crate::rng::SplitMix64::new(salt);
        for _ in 0..100 {
            acc.samples += 1;
            for t in acc.per_time.iter_mut() {
                let v = rng.next_f64() * 0.3;
                t.frac.record(v);
                t.moments.record(v);
            }
            acc.lifetime_log10.record(rng.next_f64() * 14.0);
        }
        acc
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_chunks_exactly() {
        let path = tmp("roundtrip");
        let a = sample_acc(2, 1);
        let b = sample_acc(2, 2);
        {
            let mut w = CheckpointWriter::create(&path, 0xABCD).expect("create");
            w.record(0, &a).expect("record");
            w.record(3, &b).expect("record");
        }
        let (chunks, skipped) = load(&path, 0xABCD, 2).expect("load");
        assert_eq!(skipped, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[&0], a);
        assert_eq!(chunks[&3], b);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_rejects_file() {
        let path = tmp("mismatch");
        {
            let mut w = CheckpointWriter::create(&path, 1).expect("create");
            w.record(0, &sample_acc(1, 3)).expect("record");
        }
        assert!(matches!(load(&path, 2, 1), Err(FleetError::Checkpoint(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = tmp("salvage");
        {
            let mut w = CheckpointWriter::create(&path, 7).expect("create");
            w.record(0, &sample_acc(1, 4)).expect("record");
            w.record(1, &sample_acc(1, 5)).expect("record");
        }
        // Corrupt the second record and append a torn partial line, as a
        // crash mid-write would leave behind.
        let text = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let flipped = lines[2].replace('7', "8");
        lines[2] = if flipped == lines[2] {
            lines[2].replace('3', "4")
        } else {
            flipped
        };
        lines.push("chunk 2 deadbeef 1 2".to_owned());
        lines.push("chunk".to_owned());
        fs::write(&path, lines.join("\n")).expect("write");

        let (chunks, skipped) = load(&path, 7, 1).expect("salvage load");
        assert_eq!(chunks.len(), 1);
        assert!(chunks.contains_key(&0));
        assert_eq!(skipped, 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn append_after_salvage_keeps_existing_records() {
        let path = tmp("append");
        {
            let mut w = CheckpointWriter::create(&path, 9).expect("create");
            w.record(0, &sample_acc(1, 6)).expect("record");
        }
        {
            let mut w = CheckpointWriter::append(&path).expect("append");
            w.record(1, &sample_acc(1, 7)).expect("record");
        }
        let (chunks, skipped) = load(&path, 9, 1).expect("load");
        assert_eq!(skipped, 0);
        assert_eq!(chunks.len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = tmp("missing");
        let _ = fs::remove_file(&path);
        let (chunks, skipped) = load(&path, 1, 1).expect("load");
        assert!(chunks.is_empty());
        assert_eq!(skipped, 0);
    }
}

//! Error type for the fleet engine.

use relia_core::ModelError;
use std::fmt;

/// Everything that can go wrong while running a fleet study.
#[derive(Debug)]
pub enum FleetError {
    /// The spec failed validation before any work started.
    Invalid {
        /// What was wrong with the spec.
        what: String,
    },
    /// The underlying NBTI model rejected a parameter or produced a
    /// non-finite value.
    Model(ModelError),
    /// The run was cancelled cooperatively before completing.
    Cancelled,
    /// A checkpoint file existed but cannot be used for this run.
    Checkpoint(String),
    /// Reading or writing a checkpoint failed at the I/O layer.
    Io(String),
    /// An invariant the engine maintains was violated (a bug).
    Internal(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Invalid { what } => write!(f, "invalid fleet spec: {what}"),
            FleetError::Model(e) => write!(f, "model error: {e}"),
            FleetError::Cancelled => write!(f, "fleet run cancelled"),
            FleetError::Checkpoint(what) => write!(f, "checkpoint rejected: {what}"),
            FleetError::Io(what) => write!(f, "checkpoint i/o failed: {what}"),
            FleetError::Internal(what) => write!(f, "internal fleet engine error: {what}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for FleetError {
    fn from(e: ModelError) -> Self {
        FleetError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FleetError::Invalid {
            what: "samples must be at least 1".to_owned(),
        };
        assert!(e.to_string().contains("samples"));
        assert!(FleetError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn model_errors_convert_and_chain() {
        let m = ModelError::NonFinite {
            what: "delta_vth",
            value: f64::NAN,
        };
        let e = FleetError::from(m);
        assert!(matches!(e, FleetError::Model(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

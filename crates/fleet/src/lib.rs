#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-fleet
//!
//! A vectorized Monte Carlo engine for fleet-scale statistical NBTI aging:
//! given one stress schedule and a process-variation model, how does an
//! entire *population* of devices degrade, and when does each cross its
//! delay guardband?
//!
//! The crate is organized around three ideas:
//!
//! * **Hoist, then batch.** The temperature-aware NBTI model costs an
//!   Arrhenius evaluation, the multi-cycle AC recursion, and the
//!   equivalent-stress-time transform per stress point — all independent of
//!   the sampled device. [`FleetEvaluator::prepare`] pays that cost once
//!   per `(schedule, duty, time)` via [`relia_core::NbtiModel::hoist`];
//!   drawing a device is then a handful of flops.
//! * **Deterministic streams.** Samples are drawn in fixed-size chunks,
//!   each from its own [`SplitMix64`] stream derived from `(seed, chunk
//!   index)` ([`rng`]). Chunk accumulators ([`accum`]) merge in index
//!   order, so a fleet summary is a pure function of `(spec, seed, chunk
//!   size)` — bit-identical across worker counts.
//! * **Correlated variation.** A `correlation` knob links the time-zero
//!   Vth deviation to the degradation-rate spread (Hassan & Roy's
//!   observation that fast, low-Vth devices age faster), on top of the
//!   overdrive dependence of eq. 23.
//!
//! Runs are chunk-checkpointed ([`checkpoint`]) with CRC-protected records
//! and crash-salvage on load, and cancel cooperatively at poll boundaries.
//!
//! ## Quick example
//!
//! ```
//! use relia_fleet::{run_fleet, FleetOptions, FleetSpec};
//!
//! # fn main() -> Result<(), relia_fleet::FleetError> {
//! let mut spec = FleetSpec::paper_defaults()?;
//! spec.samples = 1_000;
//! let out = run_fleet(&spec, &FleetOptions::default())?;
//! assert_eq!(out.summary.points.len(), spec.times.len());
//! assert!(out.summary.lifetime.p50 > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod accum;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod rng;
pub mod spec;

pub use accum::{ChunkAccum, Histogram, Moments};
pub use engine::{
    run_fleet, FleetEvaluator, FleetMetrics, FleetOptions, FleetOutcome, FleetPoint, FleetSummary,
    LifetimeSummary, DEFAULT_CHUNK,
};
pub use error::FleetError;
pub use rng::SplitMix64;
pub use spec::{FleetSpec, FLEET_FORMAT_VERSION};

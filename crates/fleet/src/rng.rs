//! A seeded, dependency-free PRNG for fleet sampling.
//!
//! [`SplitMix64`] (Steele, Lea & Flood's `splitmix64` finalizer) is tiny,
//! passes BigCrush on its output function, and — crucially for the fleet
//! engine — supports cheap **stream derivation**: every chunk of samples
//! draws from its own generator, a pure function of `(seed, chunk index)`.
//! The worker pool can then execute chunks in any order on any number of
//! threads, and a chunk's samples are identical bytes every time, which is
//! what makes fleet summaries reproducible bit-for-bit.

/// SplitMix64: a 64-bit state advanced by the golden-gamma increment and
/// scrambled by two xor-multiply rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment `2^64 / φ`, the classic splitmix gamma.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator starting from `seed` directly.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The generator for stream `stream` of the logical sequence `seed` —
    /// a pure function of both, decorrelated from neighbouring streams by
    /// an extra scramble round so `stream` and `stream + 1` do not overlap
    /// even though raw SplitMix64 states form one orbit.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut mixer = SplitMix64::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        let state = mixer.next_u64();
        SplitMix64::new(state)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform variate in `[0, 1)` with 53 bits of precision (the same
    /// `bits >> 11` construction as the vendored `rand`).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_from_seed_zero() {
        // First outputs of splitmix64(0), per the public-domain reference
        // implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream_is_identical() {
        let mut a = SplitMix64::stream(42, 7);
        let mut b = SplitMix64::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn neighbouring_streams_do_not_collide() {
        let mut a = SplitMix64::stream(42, 0);
        let mut b = SplitMix64::stream(42, 1);
        let first: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(first, second);
        // No element-wise overlap either (streams are not lagged copies).
        let same = first.iter().zip(&second).filter(|(x, y)| x == y).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_variates_stay_in_range_and_fill_it() {
        let mut rng = SplitMix64::stream(1, 0);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}

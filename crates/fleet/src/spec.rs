//! Fleet study specification: what to sample, how many devices, which
//! stress schedule, and the correlation structure of the variation model.

use crate::accum::HIST_BINS;
use crate::error::FleetError;
use relia_core::{Kelvin, ModeSchedule, ModelError, PmosStress, Ras, Seconds, VthDistribution};
use relia_jobs::{SWEEP_PERIOD_S, SWEEP_TEMP_ACTIVE_K};

/// Checkpoint/fingerprint format version; bump on any layout change.
pub const FLEET_FORMAT_VERSION: u64 = 1;

/// A complete description of one fleet Monte Carlo study.
///
/// Every field participates in the run fingerprint, so a checkpoint written
/// for one spec can never be resumed against another.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Active:standby residency split of the operating schedule.
    pub ras: Ras,
    /// Standby temperature (active is pinned at the sweep reference, like
    /// the sweep engine and serve endpoints).
    pub t_standby: Kelvin,
    /// Signal probability while active.
    pub p_active: f64,
    /// Stress probability while in standby (1.0 = input held low).
    pub p_standby: f64,
    /// Evaluation times, non-decreasing; the last one anchors the lifetime
    /// projection.
    pub times: Vec<Seconds>,
    /// Time-zero threshold-voltage distribution.
    pub dist: VthDistribution,
    /// Correlation in `[-1, 1]` between the time-zero Vth deviation and the
    /// log of the degradation-rate multiplier. Negative values reproduce
    /// the Hassan & Roy observation that fast (low-Vth) devices age faster.
    pub correlation: f64,
    /// Standard deviation of `ln(rate multiplier)`; 0 disables rate spread.
    pub rate_sigma: f64,
    /// Delay guardband as a fraction of nominal delay; a device yields at
    /// time `t` while its delay degradation stays at or below this.
    pub guardband: f64,
    /// Number of Monte Carlo devices.
    pub samples: usize,
    /// PRNG seed; fixes every drawn variate together with the chunk size.
    pub seed: u64,
}

impl FleetSpec {
    /// The paper-flavoured default study: the DTM schedule of fig. 10
    /// (10% active at 400 K, standby at 330 K, worst-case standby vector),
    /// the fig. 12 variation spread, and a 10 000-device fleet.
    pub fn paper_defaults() -> Result<Self, ModelError> {
        const YEAR_S: f64 = 3.156e7;
        Ok(FleetSpec {
            ras: Ras::new(1.0, 9.0)?,
            t_standby: Kelvin(330.0),
            p_active: 0.5,
            p_standby: 1.0,
            times: vec![Seconds(YEAR_S), Seconds(3.0 * YEAR_S), Seconds(1.0e8)],
            dist: VthDistribution::new(relia_core::Volts(0.22), relia_core::Volts(0.010))?,
            correlation: -0.4,
            rate_sigma: 0.08,
            guardband: 0.08,
            samples: 10_000,
            seed: 0x00F1_612A,
        })
    }

    /// The operating schedule this spec describes, on the engine-wide
    /// reference period and active temperature.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] for out-of-range temperatures.
    pub fn schedule(&self) -> Result<ModeSchedule, ModelError> {
        ModeSchedule::new(
            self.ras,
            Seconds(SWEEP_PERIOD_S),
            Kelvin(SWEEP_TEMP_ACTIVE_K),
            self.t_standby,
        )
    }

    /// The PMOS stress probabilities of this spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] for probabilities outside `[0, 1]`.
    pub fn stress(&self) -> Result<PmosStress, ModelError> {
        PmosStress::new(self.p_active, self.p_standby)
    }

    /// Validates the cross-field invariants the constructors cannot see.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.samples == 0 {
            return Err(invalid("samples must be at least 1"));
        }
        if self.times.is_empty() {
            return Err(invalid("at least one evaluation time is required"));
        }
        let mut prev = 0.0_f64;
        for t in &self.times {
            if !t.0.is_finite() || t.0 < 0.0 {
                return Err(invalid("evaluation times must be finite and non-negative"));
            }
            if t.0 < prev {
                return Err(invalid("evaluation times must be non-decreasing"));
            }
            prev = t.0;
        }
        if !(-1.0..=1.0).contains(&self.correlation) {
            return Err(invalid("correlation must lie in [-1, 1]"));
        }
        if !self.rate_sigma.is_finite() || !(0.0..=2.0).contains(&self.rate_sigma) {
            return Err(invalid("rate_sigma must lie in [0, 2]"));
        }
        if !self.guardband.is_finite() || self.guardband <= 0.0 || self.guardband >= 1.0 {
            return Err(invalid("guardband must lie in (0, 1)"));
        }
        // Schedule and stress construction re-check their own ranges.
        self.schedule().map_err(FleetError::Model)?;
        self.stress().map_err(FleetError::Model)?;
        Ok(())
    }

    /// A stable 64-bit fingerprint of the spec plus the chunk size, used to
    /// bind checkpoints to the exact run that produced them. FNV-1a over
    /// the IEEE-754 bit patterns so `-0.0` vs `0.0` and NaN payloads are
    /// distinguished the same way the sampler would see them.
    pub fn fingerprint(&self, chunk: usize) -> u64 {
        let mut h = Fnv1a::new();
        h.word(FLEET_FORMAT_VERSION);
        h.word(HIST_BINS as u64);
        h.f64(self.ras.active_fraction());
        h.f64(self.ras.standby_fraction());
        h.f64(self.t_standby.0);
        h.f64(self.p_active);
        h.f64(self.p_standby);
        h.word(self.times.len() as u64);
        for t in &self.times {
            h.f64(t.0);
        }
        h.f64(self.dist.mean().0);
        h.f64(self.dist.sigma().0);
        h.f64(self.correlation);
        h.f64(self.rate_sigma);
        h.f64(self.guardband);
        h.word(self.samples as u64);
        h.word(self.seed);
        h.word(chunk as u64);
        h.finish()
    }
}

fn invalid(what: &str) -> FleetError {
    FleetError::Invalid {
        what: what.to_owned(),
    }
}

/// 64-bit FNV-1a over little-endian words.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        let spec = FleetSpec::paper_defaults().expect("defaults build");
        spec.validate().expect("defaults validate");
        assert_eq!(spec.samples, 10_000);
        assert_eq!(spec.times.len(), 3);
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let good = FleetSpec::paper_defaults().expect("defaults build");

        let mut s = good.clone();
        s.samples = 0;
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.times.clear();
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.times = vec![Seconds(10.0), Seconds(1.0)];
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.correlation = 1.5;
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.rate_sigma = -0.1;
        assert!(s.validate().is_err());

        let mut s = good.clone();
        s.guardband = 0.0;
        assert!(s.validate().is_err());

        let mut s = good;
        s.t_standby = Kelvin(-5.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn fingerprint_moves_with_every_field() {
        let base = FleetSpec::paper_defaults().expect("defaults build");
        let fp = base.fingerprint(2048);
        assert_ne!(fp, base.fingerprint(1024), "chunk size must matter");

        let mut s = base.clone();
        s.seed ^= 1;
        assert_ne!(fp, s.fingerprint(2048));

        let mut s = base.clone();
        s.correlation = 0.0;
        assert_ne!(fp, s.fingerprint(2048));

        let mut s = base.clone();
        s.guardband = 0.1;
        assert_ne!(fp, s.fingerprint(2048));

        let mut s = base.clone();
        s.samples += 1;
        assert_ne!(fp, s.fingerprint(2048));

        // Same spec, same fingerprint.
        assert_eq!(fp, base.clone().fingerprint(2048));
    }
}

//! Log2-bucketed streaming latency histograms.
//!
//! A [`LatencyHist`] is a concurrent accumulator over `u64` nanoseconds:
//! bucket `i` counts samples in `[2^i, 2^(i+1))` (0 ns lands in bucket 0),
//! so [`HIST_BUCKETS`] = 64 buckets cover the whole `u64` range — 1 ns to
//! ~584 years — with at most 2× relative error per bucket. That trade was
//! chosen deliberately:
//!
//! * **No configuration.** Unlike the fixed-range fleet accumulators
//!   (`relia_fleet::accum`), latency has no natural `[lo, hi)`: a cache
//!   hit is ~100 ns, a cold fleet evaluation can be seconds. Log2 buckets
//!   need no range choice, so merges can never fail on a range mismatch.
//! * **Cheap.** Recording is `ilog2` plus three relaxed atomic adds.
//! * **Order-independent.** A [`HistSnapshot`] merges by plain `u64`
//!   addition — commutative and associative — so per-worker histograms
//!   fold to the same result for any worker count or merge order.
//!
//! Percentiles interpolate linearly inside the containing bucket, which
//! keeps [`HistSnapshot::quantile`] monotone in rank.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Buckets per histogram: one per power of two across the `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A concurrent log2-bucketed histogram of nanosecond samples.
///
/// Shared by reference across threads; all methods take `&self`.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample given as a [`Duration`] (saturating at `u64` ns).
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    ///
    /// Buckets are read individually (relaxed), so a snapshot taken while
    /// writers are active may be mid-update — totals still reconcile once
    /// writers quiesce.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist::new()
    }
}

/// The bucket holding `ns`: `floor(log2(max(ns, 1)))`.
pub fn bucket_index(ns: u64) -> usize {
    ns.max(1).ilog2() as usize
}

/// Inclusive-lower / exclusive-upper bounds of bucket `i` in nanoseconds
/// (the last bucket's upper bound saturates at `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    };
    (lo, hi)
}

/// An immutable copy of a [`LatencyHist`]'s counters: the unit of merge,
/// transport (the `MetricsSnapshot` histogram section in `relia-jobs`),
/// and percentile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; HIST_BUCKETS],
    /// Exact sum of all recorded nanoseconds.
    pub sum_ns: u64,
    /// Total samples recorded.
    pub count: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum_ns: 0,
            count: 0,
        }
    }
}

impl HistSnapshot {
    /// Adds `other`'s counts into this snapshot.
    ///
    /// Plain `u64` sums: commutative and associative, so any merge order
    /// over any partition of the samples yields identical counters.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
        self.count += other.count;
    }

    /// The `p`-quantile in nanoseconds, by linear interpolation inside the
    /// containing bucket. Monotone non-decreasing in `p`; 0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = p * self.count as f64;
        let mut cum = 0.0_f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let next = cum + b as f64;
            if next >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = if b == 0 {
                    0.0
                } else {
                    ((target - cum) / b as f64).clamp(0.0, 1.0)
                };
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cum = next;
        }
        let (_, hi) = bucket_bounds(HIST_BUCKETS - 1);
        hi as f64
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile latency in nanoseconds.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Renders a nanosecond quantity with a human unit (`ns`, `µs`, `ms`, `s`),
/// three significant-ish digits — for CLI summaries, not wire formats.
pub fn fmt_ns(ns: f64) -> String {
    let (value, unit) = if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    };
    if value < 10.0 {
        format!("{value:.2}{unit}")
    } else if value < 100.0 {
        format!("{value:.1}{unit}")
    } else {
        format!("{value:.0}{unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi);
            assert_eq!(bucket_index(lo.max(1)), i);
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), i);
            }
        }
    }

    #[test]
    fn records_and_snapshots_reconcile() {
        let h = LatencyHist::new();
        for ns in [0, 1, 2, 3, 1000, 1024, u64::MAX] {
            h.record_ns(ns);
        }
        h.record(Duration::from_micros(5));
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8);
        assert_eq!(s.buckets[0], 2); // 0, 1 → bucket 0; 2, 3 → bucket 1
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[9], 1); // 1000
        assert_eq!(s.buckets[10], 1); // 1024
        assert_eq!(s.buckets[12], 1); // 5000
        assert_eq!(s.buckets[63], 1); // u64::MAX
                                      // fetch_add wraps on overflow; mirror it for the u64::MAX sample.
        assert_eq!(s.sum_ns, (6u64 + 2024 + 5000).wrapping_add(u64::MAX));
    }

    #[test]
    fn merge_is_commutative() {
        let a = LatencyHist::new();
        let b = LatencyHist::new();
        for i in 0..100u64 {
            a.record_ns(i * 17);
            b.record_ns(i * i);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 200);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record_ns(i);
        }
        let s = h.snapshot();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=100 {
            let q = s.quantile(k as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at p={k}");
            prev = q;
        }
        // Uniform 1..=10_000: the median sits in the right power-of-two
        // bucket (log2 resolution, not exact).
        let p50 = s.p50();
        assert!((4096.0..8192.0).contains(&p50), "p50={p50}");
        assert!(s.p99() <= 16384.0);
        assert_eq!(s.mean_ns(), 5000.5);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(0.0), "0.00ns");
        assert_eq!(fmt_ns(999.0), "999ns");
        assert_eq!(fmt_ns(1500.0), "1.50µs");
        assert_eq!(fmt_ns(45_600.0), "45.6µs");
        assert_eq!(fmt_ns(2.5e6), "2.50ms");
        assert_eq!(fmt_ns(3.21e9), "3.21s");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = LatencyHist::new().snapshot();
        assert_eq!(s, HistSnapshot::default());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean_ns(), 0.0);
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-obs
//!
//! The observability substrate for the relia runtimes: where does the
//! wall time of a degradation query, a sweep job, or a fleet chunk
//! actually go?
//!
//! Three pieces, all std-only and dependency-free:
//!
//! * [`clock`] — a [`Clock`] trait over monotonic nanoseconds, with a
//!   production [`MonotonicClock`] and a deterministic [`TestClock`], so
//!   golden tests never read real time.
//! * [`span`] — lightweight spans: a [`Tracer`] hands out RAII
//!   [`SpanGuard`]s that record `(name, parent, start, duration)` into a
//!   fixed-capacity ring buffer on drop. Recording is *total*: a writer
//!   overwrites the oldest slot and **never blocks** — under slot
//!   contention the record is dropped and counted instead.
//! * [`hist`] — [`LatencyHist`], a concurrent log2-bucketed streaming
//!   histogram over nanoseconds. Bucket `i` covers `[2^i, 2^(i+1))`, so
//!   64 buckets span 1 ns to ~584 years with ≤ 2× relative error —
//!   recording is three relaxed atomic adds, and snapshots merge
//!   order-independently (plain `u64` sums) for p50/p90/p99 extraction.
//!
//! The serve, jobs, and fleet runtimes thread these through their hot
//! paths; `MetricsSnapshot` in `relia-jobs` carries the histogram
//! snapshots so every renderer (Prometheus text, CLI summaries) picks
//! them up uniformly.

pub mod clock;
pub mod hist;
pub mod span;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use hist::{fmt_ns, HistSnapshot, LatencyHist, HIST_BUCKETS};
pub use span::{SpanGuard, SpanRecord, Tracer};

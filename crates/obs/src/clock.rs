//! Monotonic time as plain nanoseconds, behind a trait.
//!
//! Everything in this crate measures durations as `u64` nanoseconds since
//! an arbitrary per-clock epoch. The trait exists for one reason: tests
//! and goldens must never read real time, so every component that stamps
//! spans or histograms takes a [`Clock`] and the test suite hands it a
//! [`TestClock`] it advances by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonic nanoseconds since an arbitrary epoch.
///
/// Implementations must be monotone non-decreasing across calls (within
/// one clock instance) and cheap enough for hot paths.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic wall time anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of u64 nanoseconds: saturate rather than wrap.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: starts at 0 and only moves when told.
#[derive(Debug, Default)]
pub struct TestClock {
    now: AtomicU64,
}

impl TestClock {
    /// A clock frozen at 0 ns.
    pub fn new() -> Self {
        TestClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut prev = clock.now_ns();
        for _ in 0..1000 {
            let now = clock.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn test_clock_moves_only_when_advanced() {
        let clock = TestClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 250);
        clock.advance(1);
        assert_eq!(clock.now_ns(), 251);
    }
}

//! Lightweight spans: RAII guards recording into a fixed-capacity ring.
//!
//! A [`Tracer`] owns a [`Clock`] and a ring of slots. [`Tracer::span`]
//! returns a [`SpanGuard`]; when the guard drops it stamps a
//! [`SpanRecord`] — name, parent id, start, duration — into the next ring
//! slot, overwriting whatever was there. The write path is **total**: the
//! slot index is the span id (already a single `fetch_add`) modulo the
//! capacity, and each slot is taken with
//! `try_lock`, so a recording thread never blocks — if a reader (or a
//! very slow writer) holds the slot, the record is dropped and counted in
//! [`Tracer::dropped`] instead.
//!
//! Why a mutex per slot at all? The crate forbids `unsafe`, so records
//! (which carry a `&'static str` name) cannot be published through bare
//! atomics; a never-contended-in-practice `try_lock` per slot is the
//! std-only equivalent of a seqlock, with drop-on-contention standing in
//! for the retry loop.
//!
//! A tracer built with capacity 0 is disabled: guards still nest (ids are
//! allocated so parents stay meaningful) but nothing is stored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, TryLockError};

use crate::clock::{Clock, MonotonicClock};

/// One finished span, as stored in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (monotone per tracer, starting at 1).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// Static span name (e.g. `"evaluate"`).
    pub name: &'static str,
    /// Start time in clock nanoseconds.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

/// Builds a span guard: `span!(tracer, "name")` or
/// `span!(tracer, "name", parent = id)`.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:literal) => {
        $tracer.span($name)
    };
    ($tracer:expr, $name:literal, parent = $parent:expr) => {
        $tracer.child($name, $parent)
    };
}

/// A span recorder: hands out guards, stores finished spans in a ring.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    slots: Vec<Mutex<Option<SpanRecord>>>,
    dropped: AtomicU64,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.slots.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// A tracer over the monotonic wall clock with `capacity` ring slots
    /// (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        Tracer::with_clock(capacity, Arc::new(MonotonicClock::new()))
    }

    /// A tracer over an explicit clock — tests pass a
    /// [`TestClock`](crate::clock::TestClock).
    pub fn with_clock(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Tracer {
            clock,
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            dropped: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Whether this tracer stores anything.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Starts a root span.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.child(name, 0)
    }

    /// Starts a span under parent span id `parent` (0 = root).
    pub fn child(&self, name: &'static str, parent: u64) -> SpanGuard<'_> {
        self.span_at(name, parent, self.clock.now_ns())
    }

    /// Starts a span with an explicit (possibly backdated) start time —
    /// for phases already underway when the guard is created, like a
    /// request span opened once the request has finished arriving.
    pub fn span_at(&self, name: &'static str, parent: u64, start_ns: u64) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start_ns,
            done: false,
        }
    }

    /// Records a span retroactively, for phases whose start predates any
    /// guard (e.g. queue wait measured from an enqueue timestamp).
    /// Returns the span's id.
    pub fn record(&self, name: &'static str, parent: u64, start_ns: u64, dur_ns: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.store(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns,
        });
        id
    }

    /// Records spans whose record could not be stored because its slot was
    /// held (never because a writer waited).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The ring's current contents in span-id order (oldest first).
    pub fn recent(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    fn store(&self, record: SpanRecord) {
        if self.slots.is_empty() {
            return;
        }
        // Ids are allocated sequentially, so using them as the ring
        // cursor gives the same round-robin rotation with one fewer
        // atomic RMW per record.
        let at = record.id as usize % self.slots.len();
        match self.slots[at].try_lock() {
            Ok(mut slot) => *slot = Some(record),
            Err(TryLockError::Poisoned(p)) => *p.into_inner() = Some(record),
            Err(TryLockError::WouldBlock) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// An in-flight span; records itself into the tracer's ring on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    done: bool,
}

impl SpanGuard<'_> {
    /// This span's id — pass to [`Tracer::child`] to nest under it.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds elapsed since this span started.
    pub fn elapsed_ns(&self) -> u64 {
        self.tracer.clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Ends the span now, returning its duration in nanoseconds.
    ///
    /// Records with a single clock read — cheaper than dropping the
    /// guard, which must read the clock again in `Drop`.
    pub fn finish(mut self) -> u64 {
        let dur = self.elapsed_ns();
        self.done = true;
        self.tracer.store(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: dur,
        });
        dur
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let end = self.tracer.clock.now_ns();
        self.tracer.store(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    fn test_tracer(capacity: usize) -> (Arc<TestClock>, Tracer) {
        let clock = Arc::new(TestClock::new());
        let tracer = Tracer::with_clock(capacity, clock.clone());
        (clock, tracer)
    }

    #[test]
    fn spans_record_name_parent_and_duration() {
        let (clock, tracer) = test_tracer(8);
        let root = tracer.span("request");
        clock.advance(10);
        {
            let child = tracer.child("evaluate", root.id());
            clock.advance(25);
            drop(child);
        }
        clock.advance(5);
        drop(root);

        let spans = tracer.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].dur_ns, 40);
        assert_eq!(spans[1].name, "evaluate");
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].start_ns, 10);
        assert_eq!(spans[1].dur_ns, 25);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (_, tracer) = test_tracer(4);
        for _ in 0..10 {
            drop(tracer.span("tick"));
        }
        let spans = tracer.recent();
        assert_eq!(spans.len(), 4);
        // Only the 4 newest ids survive, in order.
        assert_eq!(
            spans.iter().map(|s| s.id).collect::<Vec<_>>(),
            [7, 8, 9, 10]
        );
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn zero_capacity_disables_storage_but_keeps_ids() {
        let (_, tracer) = test_tracer(0);
        assert!(!tracer.enabled());
        let a = tracer.span("a");
        let b = tracer.child("b", a.id());
        assert!(b.id() > a.id());
        drop(b);
        drop(a);
        assert!(tracer.recent().is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn span_macro_builds_roots_and_children() {
        let (clock, tracer) = test_tracer(4);
        let root = span!(tracer, "outer");
        clock.advance(3);
        drop(span!(tracer, "inner", parent = root.id()));
        drop(root);
        let spans = tracer.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, spans[0].id);
    }

    #[test]
    fn span_at_backdates_the_start() {
        let (clock, tracer) = test_tracer(2);
        clock.advance(100);
        let s = tracer.span_at("arrived", 0, 40);
        clock.advance(10);
        drop(s);
        let spans = tracer.recent();
        assert_eq!(spans[0].start_ns, 40);
        assert_eq!(spans[0].dur_ns, 70);
    }

    #[test]
    fn finish_returns_duration() {
        let (clock, tracer) = test_tracer(2);
        let s = tracer.span("x");
        clock.advance(123);
        assert_eq!(s.finish(), 123);
        assert_eq!(tracer.recent()[0].dur_ns, 123);
    }
}

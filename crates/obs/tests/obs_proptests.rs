//! Property-based tests for the observability substrate.
//!
//! Three guarantees under test:
//!
//! 1. **Merge order-independence** — merging per-worker histogram
//!    snapshots in any order (any partition of the samples, any
//!    permutation of the parts) yields the same [`HistSnapshot`] as
//!    recording every sample into one histogram.
//! 2. **Percentile rank-monotonicity** — `quantile(p)` is non-decreasing
//!    in `p`, so `p50 <= p90 <= p99` for every sample set, and every
//!    quantile stays within the recorded value range's bucket bounds.
//! 3. **Span-ring totality** — concurrent recording into a fixed-capacity
//!    [`Tracer`] never blocks and never corrupts its accounting: the ring
//!    never holds more than its capacity, every retained record is one
//!    that was submitted (unique ids, known names), and records only go
//!    missing by overwrite (newer id in the slot) or by the counted
//!    drop path — never silently.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use proptest::prelude::*;
use relia_obs::hist::{bucket_bounds, bucket_index};
use relia_obs::{HistSnapshot, LatencyHist, TestClock, Tracer};

/// Record `samples` into one histogram and return its snapshot.
fn record_all(samples: &[u64]) -> HistSnapshot {
    let h = LatencyHist::new();
    for &ns in samples {
        h.record_ns(ns);
    }
    h.snapshot()
}

proptest! {
    /// Partition the samples into `parts` chunks, snapshot each chunk
    /// independently, then merge the parts in a shuffled order: the
    /// result must be identical to the single-histogram snapshot.
    #[test]
    fn merge_is_order_independent(
        samples in proptest::collection::vec(0u64..=1 << 54, 1..200),
        parts in 1usize..8,
        shuffle_seed in any::<u64>(),
    ) {
        let expected = record_all(&samples);

        let chunk = samples.len().div_ceil(parts);
        let mut snaps: Vec<HistSnapshot> =
            samples.chunks(chunk).map(record_all).collect();

        // Deterministic shuffle from the seed (xorshift index picks).
        let mut state = shuffle_seed | 1;
        for i in (1..snaps.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            snaps.swap(i, (state as usize) % (i + 1));
        }

        let mut merged = HistSnapshot::default();
        for s in &snaps {
            merged.merge(s);
        }
        prop_assert_eq!(merged, expected);
    }

    /// Quantiles are monotone in rank and bounded by the extreme
    /// samples' bucket upper/lower bounds.
    #[test]
    fn quantiles_are_rank_monotone(
        samples in proptest::collection::vec(1u64..=1 << 54, 1..200),
        lo_bps in 0u32..=10_000,
        hi_bps in 0u32..=10_000,
    ) {
        let snap = record_all(&samples);
        let (lo, hi) = if lo_bps <= hi_bps { (lo_bps, hi_bps) } else { (hi_bps, lo_bps) };
        let q_lo = snap.quantile(f64::from(lo) / 10_000.0);
        let q_hi = snap.quantile(f64::from(hi) / 10_000.0);
        prop_assert!(q_lo <= q_hi, "quantile({lo}bps)={q_lo} > quantile({hi}bps)={q_hi}");

        let p50 = snap.p50();
        let p90 = snap.p90();
        let p99 = snap.p99();
        prop_assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");

        // Every quantile lies within the occupied buckets' bounds.
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        let hi_bound = bucket_bounds(bucket_index(max)).1;
        let lo_bound = bucket_bounds(bucket_index(min)).0;
        prop_assert!(p99 <= hi_bound as f64, "p99={p99} above bucket bound {hi_bound}");
        prop_assert!(
            snap.quantile(0.0) >= lo_bound as f64,
            "quantile(0) below bucket bound {lo_bound}"
        );
    }

    /// Hammer a small ring from several threads: no call blocks (the
    /// scope joins), the ring never exceeds its capacity, every retained
    /// record is a genuine submission (unique id in range, known name),
    /// and the drop counter plus retained records never overshoot the
    /// number submitted.
    #[test]
    fn span_ring_is_total_under_interleavings(
        capacity in 1usize..16,
        threads in 1usize..5,
        per_thread in 1usize..40,
    ) {
        let tracer = Tracer::with_clock(capacity, Arc::new(TestClock::new()));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let tracer = &tracer;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        if i % 3 == 0 {
                            tracer.record("raw", 0, (t * 1000 + i) as u64, 1);
                        } else {
                            let g = tracer.span("scoped");
                            g.finish();
                        }
                    }
                });
            }
        });
        let submitted = (threads * per_thread) as u64;
        let spans = tracer.recent();
        prop_assert!(spans.len() <= capacity, "retained {} > capacity {capacity}", spans.len());
        prop_assert!(
            spans.len() as u64 + tracer.dropped() <= submitted,
            "retained {} + dropped {} > submitted {submitted}",
            spans.len(),
            tracer.dropped()
        );
        // Every retained record is a real submission: id unique and in
        // the issued range, name one of ours, ids strictly ascending.
        for pair in spans.windows(2) {
            prop_assert!(pair[0].id < pair[1].id, "recent() ids not strictly ascending");
        }
        for s in &spans {
            prop_assert!(s.id >= 1 && s.id <= submitted, "id {} out of range", s.id);
            prop_assert!(s.name == "raw" || s.name == "scoped", "unknown name {:?}", s.name);
        }
        // If nothing contended, the newest records must all be present.
        if tracer.dropped() == 0 && submitted >= capacity as u64 {
            prop_assert_eq!(spans.len(), capacity, "ring not full despite enough submissions");
        }
    }
}

//! Property-based tests for netlist invariants.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use relia_cells::Library;
use relia_netlist::{bench, iscas, CircuitBuilder, NetDriver};

/// Builds a random layered circuit description as `.bench` text.
fn random_bench(pis: usize, gates: &[(usize, usize)]) -> String {
    // gates: (function selector, fan-in seed); nets named n0..; PIs first.
    let funcs = ["NAND", "NOR", "AND", "OR", "XOR", "NOT"];
    let mut text = String::new();
    for i in 0..pis {
        text.push_str(&format!("INPUT(n{i})\n"));
    }
    let mut next = pis;
    for &(f, seed) in gates {
        let func = funcs[f % funcs.len()];
        let arity = if func == "NOT" { 1 } else { 2 + seed % 2 };
        let args: Vec<String> = (0..arity)
            .map(|k| format!("n{}", (seed + k * 7) % next))
            .collect();
        text.push_str(&format!("n{next} = {func}({})\n", args.join(", ")));
        next += 1;
    }
    text.push_str(&format!("OUTPUT(n{})\n", next - 1));
    text
}

proptest! {
    /// Any generated bench text parses, and the result is a DAG whose
    /// topological order places drivers before consumers.
    #[test]
    fn parsed_circuits_are_topologically_sound(
        pis in 2usize..6,
        gates in prop::collection::vec((0usize..6, 0usize..1000), 1..40),
    ) {
        let text = random_bench(pis, &gates);
        let c = bench::parse(&text, Library::ptm90()).expect("generated text is valid");
        let mut seen = vec![false; c.nets().len()];
        for &pi in c.primary_inputs() {
            seen[pi.index()] = true;
        }
        for &gid in c.topo_order() {
            let g = c.gate(gid);
            for input in g.inputs() {
                prop_assert!(seen[input.index()], "consumer before driver");
            }
            seen[g.output().index()] = true;
        }
        // Every net is eventually driven.
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Write→parse round trips preserve the logic function.
    #[test]
    fn bench_round_trip_equivalence(
        pis in 2usize..5,
        gates in prop::collection::vec((0usize..6, 0usize..1000), 1..25),
        stim in prop::collection::vec(any::<bool>(), 5),
    ) {
        let text = random_bench(pis, &gates);
        let lib = Library::ptm90();
        let c1 = bench::parse(&text, lib.clone()).expect("valid");
        let c2 = bench::parse(&bench::write(&c1), lib).expect("round trip parses");
        let eval = |c: &relia_netlist::Circuit| -> Vec<bool> {
            let mut values = vec![false; c.nets().len()];
            for (i, &pi) in c.primary_inputs().iter().enumerate() {
                values[pi.index()] = stim[i % stim.len()];
            }
            for &gid in c.topo_order() {
                let g = c.gate(gid);
                let ins: Vec<bool> = g.inputs().iter().map(|n| values[n.index()]).collect();
                values[g.output().index()] = c.library().cell(g.cell()).eval(&ins);
            }
            c.primary_outputs().iter().map(|p| values[p.index()]).collect()
        };
        prop_assert_eq!(eval(&c1), eval(&c2));
    }

    /// Gate levels are consistent: each gate sits one level above its
    /// deepest fan-in.
    #[test]
    fn levels_are_consistent(gates in prop::collection::vec((0usize..6, 0usize..1000), 1..30)) {
        let text = random_bench(3, &gates);
        let c = bench::parse(&text, Library::ptm90()).expect("valid");
        for &gid in c.topo_order() {
            let g = c.gate(gid);
            let max_in = g.inputs().iter().map(|n| match c.net(*n).driver() {
                NetDriver::PrimaryInput => 0,
                NetDriver::Gate(src) => c.gate_level(src),
            }).max().unwrap_or(0);
            prop_assert_eq!(c.gate_level(gid), max_in + 1);
        }
    }
}

#[test]
fn all_benchmarks_build_and_validate() {
    for name in iscas::names() {
        let c = iscas::circuit(name).expect("known name");
        assert!(!c.gates().is_empty(), "{name}");
        assert!(!c.primary_outputs().is_empty(), "{name}");
        // No net may dangle: every gate output is consumed or is a PO.
        for g in c.gates() {
            let out = g.output();
            assert!(
                !c.fanout(out).is_empty() || c.is_primary_output(out),
                "{name}: dangling net {}",
                c.net(out).name()
            );
        }
    }
}

#[test]
fn builder_rejects_output_free_circuit() {
    let mut b = CircuitBuilder::new("x", Library::ptm90());
    let a = b.add_input("a");
    b.add_gate("INV", "g", &[a]).unwrap();
    assert!(b.build().is_err());
}

proptest! {
    /// The .bench parser never panics on arbitrary input: it returns either
    /// a circuit or a structured error.
    #[test]
    fn parser_is_total_on_garbage(text in "\\PC{0,400}") {
        let _ = bench::parse(&text, Library::ptm90());
    }

    /// Random line soups built from plausible tokens also never panic.
    #[test]
    fn parser_is_total_on_token_soup(
        lines in prop::collection::vec("(INPUT|OUTPUT|[a-z]{1,4} = (AND|NAND|XOR|NOT))\\([a-z0-9, ]{0,12}\\)", 0..20),
    ) {
        let text = lines.join("\n");
        let _ = bench::parse(&text, Library::ptm90());
    }
}

proptest! {
    /// bench -> circuit -> Verilog -> circuit preserves the logic function.
    #[test]
    fn verilog_round_trip_equivalence(
        pis in 2usize..5,
        gates in prop::collection::vec((0usize..6, 0usize..1000), 1..20),
        stim in prop::collection::vec(any::<bool>(), 5),
    ) {
        let text = random_bench(pis, &gates);
        let lib = Library::ptm90();
        let c1 = bench::parse(&text, lib.clone()).expect("valid");
        let v = relia_netlist::verilog::write(&c1);
        let c2 = relia_netlist::verilog::parse(&v, lib).expect("verilog parses");
        let eval = |c: &relia_netlist::Circuit| -> Vec<bool> {
            let mut values = vec![false; c.nets().len()];
            for (i, &pi) in c.primary_inputs().iter().enumerate() {
                values[pi.index()] = stim[i % stim.len()];
            }
            for &gid in c.topo_order() {
                let g = c.gate(gid);
                let ins: Vec<bool> = g.inputs().iter().map(|n| values[n.index()]).collect();
                values[g.output().index()] = c.library().cell(g.cell()).eval(&ins);
            }
            c.primary_outputs().iter().map(|p| values[p.index()]).collect()
        };
        prop_assert_eq!(eval(&c1), eval(&c2));
    }

    /// The Verilog tokenizer/parser never panics on arbitrary text.
    #[test]
    fn verilog_parser_is_total(text in "\\PC{0,300}") {
        let _ = relia_netlist::verilog::parse(&text, Library::ptm90());
    }
}

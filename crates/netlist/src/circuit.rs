//! The combinational circuit DAG.

use relia_cells::{CellId, Library};

/// Identifier of a net within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// Raw index into the circuit's net list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a gate instance within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// Raw index into the circuit's gate list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input.
    PrimaryInput,
    /// The net is driven by a gate's output.
    Gate(GateId),
}

/// A net: a named wire with exactly one driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: NetDriver,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives the net.
    pub fn driver(&self) -> NetDriver {
        self.driver
    }
}

/// A gate instance: a library cell with connected input and output nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) name: String,
    pub(crate) cell: CellId,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
}

impl Gate {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library cell this instance realizes.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A validated combinational circuit: an acyclic gate DAG over a cell
/// library, with primary inputs/outputs and precomputed topological order,
/// logic levels, and fan-out maps.
///
/// Construct circuits through [`crate::CircuitBuilder`] or the
/// [`crate::bench`] parser.
#[derive(Debug, Clone)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) library: Library,
    pub(crate) nets: Vec<Net>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) primary_inputs: Vec<NetId>,
    pub(crate) primary_outputs: Vec<NetId>,
    pub(crate) topo: Vec<GateId>,
    pub(crate) levels: Vec<usize>,
    pub(crate) fanout: Vec<Vec<GateId>>,
    pub(crate) is_po: Vec<bool>,
}

impl Circuit {
    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library the circuit is mapped to.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gate instances.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Fetches a net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Fetches a gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Primary input nets, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Gates in topological (fan-in before fan-out) order.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Logic level of each gate (indexed by `GateId::index`): 1 + the
    /// maximum level of its fan-in gates, with primary inputs at level 0.
    pub fn gate_level(&self, id: GateId) -> usize {
        self.levels[id.0]
    }

    /// Maximum logic depth of the circuit.
    pub fn depth(&self) -> usize {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Gates whose inputs include `net` (the net's fan-out).
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanout[net.0]
    }

    /// Whether `net` is a primary output.
    pub fn is_primary_output(&self, net: NetId) -> bool {
        self.is_po[net.0]
    }

    /// Capacitive load on `net` in unit input capacitances: the sum of the
    /// fan-out pins' input capacitances, plus one unit for a primary output
    /// pad.
    pub fn load_of(&self, net: NetId) -> f64 {
        let mut load = 0.0;
        for &g in self.fanout(net) {
            load += self.library.cell(self.gates[g.0].cell).timing().input_cap;
        }
        if self.is_po[net.0] {
            load += 1.0;
        }
        load
    }

    /// Looks up a net by name (linear scan; intended for tests and I/O).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n.name == name).map(NetId)
    }

    /// Summary statistics: `(inputs, outputs, gates, depth)`.
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        (
            self.primary_inputs.len(),
            self.primary_outputs.len(),
            self.gates.len(),
            self.depth(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CircuitBuilder;
    use relia_cells::Library;

    #[test]
    fn load_accounts_for_fanout_and_po() {
        let mut b = CircuitBuilder::new("t", Library::ptm90());
        let a = b.add_input("a");
        let n1 = b.add_gate("INV", "g1", &[a]).unwrap();
        let n2 = b.add_gate("NAND2", "g2", &[a, n1]).unwrap();
        let n3 = b.add_gate("INV", "g3", &[n1]).unwrap();
        b.mark_output(n2);
        b.mark_output(n3);
        let c = b.build().unwrap();

        // n1 feeds a NAND2 pin (1.2) and an INV pin (1.0).
        let n1_id = c.find_net("g1").unwrap();
        assert!((c.load_of(n1_id) - 2.2).abs() < 1e-12);
        // n2 is a PO with no gate fan-out.
        let n2_id = c.find_net("g2").unwrap();
        assert!((c.load_of(n2_id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn levels_and_depth() {
        let mut b = CircuitBuilder::new("t", Library::ptm90());
        let a = b.add_input("a");
        let x = b.add_gate("INV", "g1", &[a]).unwrap();
        let y = b.add_gate("INV", "g2", &[x]).unwrap();
        let z = b.add_gate("NAND2", "g3", &[a, y]).unwrap();
        b.mark_output(z);
        let c = b.build().unwrap();
        assert_eq!(c.depth(), 3);
        let g3 = c.gates().iter().position(|g| g.name() == "g3").unwrap();
        assert_eq!(c.gate_level(crate::GateId(g3)), 3);
    }
}

//! Structural Verilog (gate-level subset): parser and writer.
//!
//! The accepted subset covers what gate-level netlists actually use:
//!
//! ```text
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11, N16, N19;
//!   nand g10 (N10, N1, N3);
//!   nand g11 (N11, N3, N6);
//!   NAND2 g16 (.Z(N16), .I0(N2), .I1(N11));
//!   nand g19 (N19, N11, N7);
//!   nand g22 (N22, N10, N16);
//!   nand g23 (N23, N16, N19);
//! endmodule
//! ```
//!
//! * Verilog gate primitives (`and`, `nand`, `or`, `nor`, `xor`, `xnor`,
//!   `not`, `buf`) with positional ports, output first, any arity (wide
//!   gates are decomposed like the `.bench` parser does);
//! * library-cell instantiations by name (`NAND2`, `AOI21`, …) with either
//!   positional (`(out, in0, in1, …)`) or named (`.Z(out), .I0(a)…`) ports;
//! * one module per file; `input`/`output`/`wire` declarations, single-bit
//!   only; `//` and `/* */` comments.

use std::collections::HashMap;
use std::fmt::Write as _;

use relia_cells::Library;

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, NetId};
use crate::error::NetlistError;

/// Parses the structural-Verilog subset into a [`Circuit`] over `library`.
///
/// # Errors
///
/// Returns [`NetlistError::ParseError`] for text outside the subset, plus
/// the usual construction errors.
///
/// ```
/// use relia_cells::Library;
/// use relia_netlist::verilog;
///
/// # fn main() -> Result<(), relia_netlist::NetlistError> {
/// let src = "module m (a, b, y); input a, b; output y; nand g (y, a, b); endmodule";
/// let c = verilog::parse(src, Library::ptm90())?;
/// assert_eq!(c.gates().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, library: Library) -> Result<Circuit, NetlistError> {
    let tokens = tokenize(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        library,
    };
    p.module()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Sym(char),
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>, NetlistError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => {
                        return Err(NetlistError::ParseError {
                            line,
                            message: "stray '/'".into(),
                        })
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '\\' => {
                let mut ident = String::new();
                // Escaped identifiers (`\foo `) run to whitespace.
                if c == '\\' {
                    chars.next();
                    while let Some(&c) = chars.peek() {
                        if c.is_whitespace() {
                            break;
                        }
                        ident.push(c);
                        chars.next();
                    }
                } else {
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' || c == '$' {
                            ident.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                out.push((line, Tok::Ident(ident)));
            }
            '(' | ')' | ',' | ';' | '.' => {
                out.push((line, Tok::Sym(c)));
                chars.next();
            }
            other => {
                return Err(NetlistError::ParseError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    library: Library,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> NetlistError {
        NetlistError::ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next_ident(&mut self) -> Result<String, NetlistError> {
        match self.tokens.get(self.pos) {
            Some((_, Tok::Ident(s))) => {
                self.pos += 1;
                Ok(s.clone())
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), NetlistError> {
        match self.tokens.get(self.pos) {
            Some((_, Tok::Sym(s))) if *s == c => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected '{c}'"))),
        }
    }

    fn peek_sym(&self, c: char) -> bool {
        matches!(self.tokens.get(self.pos), Some((_, Tok::Sym(s))) if *s == c)
    }

    fn ident_list_until_semi(&mut self) -> Result<Vec<String>, NetlistError> {
        let mut names = vec![self.next_ident()?];
        loop {
            if self.peek_sym(',') {
                self.pos += 1;
                names.push(self.next_ident()?);
            } else {
                self.expect_sym(';')?;
                return Ok(names);
            }
        }
    }

    fn module(&mut self) -> Result<Circuit, NetlistError> {
        let kw = self.next_ident()?;
        if kw != "module" {
            return Err(self.err("expected 'module'"));
        }
        let name = self.next_ident()?;
        // Port header (names only; directions come from declarations).
        self.expect_sym('(')?;
        while !self.peek_sym(')') {
            let _ = self.next_ident()?;
            if self.peek_sym(',') {
                self.pos += 1;
            }
        }
        self.expect_sym(')')?;
        self.expect_sym(';')?;

        #[derive(Debug)]
        struct Inst {
            line: usize,
            kind: String,
            name: String,
            positional: Vec<String>,
            named: Vec<(String, String)>,
        }
        let mut inputs: Vec<String> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut instances: Vec<Inst> = Vec::new();
        let mut inst_no = 0usize;

        loop {
            let line = self.line();
            let kw = self.next_ident()?;
            match kw.as_str() {
                "endmodule" => break,
                "input" => inputs.extend(self.ident_list_until_semi()?),
                "output" => outputs.extend(self.ident_list_until_semi()?),
                "wire" => {
                    let _ = self.ident_list_until_semi()?;
                }
                kind => {
                    // Gate primitive or cell instantiation; instance name is
                    // optional for primitives.
                    inst_no += 1;
                    let inst_name = if self.peek_sym('(') {
                        format!("u{inst_no}")
                    } else {
                        self.next_ident()?
                    };
                    self.expect_sym('(')?;
                    let mut positional = Vec::new();
                    let mut named = Vec::new();
                    while !self.peek_sym(')') {
                        if self.peek_sym('.') {
                            self.pos += 1;
                            let port = self.next_ident()?;
                            self.expect_sym('(')?;
                            let net = self.next_ident()?;
                            self.expect_sym(')')?;
                            named.push((port, net));
                        } else {
                            positional.push(self.next_ident()?);
                        }
                        if self.peek_sym(',') {
                            self.pos += 1;
                        }
                    }
                    self.expect_sym(')')?;
                    self.expect_sym(';')?;
                    instances.push(Inst {
                        line,
                        kind: kind.to_owned(),
                        name: inst_name,
                        positional,
                        named,
                    });
                }
            }
        }

        // Elaborate: resolve each instance to (output net, func, input nets),
        // then reuse the .bench emission machinery via dependency order.
        let mut builder = CircuitBuilder::new(name, self.library.clone());
        let mut resolved: HashMap<String, NetId> = HashMap::new();
        for pi in &inputs {
            let id = builder.add_input(pi.clone());
            resolved.insert(pi.clone(), id);
        }

        struct Def {
            line: usize,
            func: String,
            inputs: Vec<String>,
            instance: String,
        }
        let mut defs: HashMap<String, Def> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for inst in instances {
            let (out_net, in_nets, func) =
                self.resolve_ports(&inst.kind, inst.line, inst.positional, inst.named)?;
            if defs.contains_key(&out_net) || resolved.contains_key(&out_net) {
                return Err(NetlistError::DuplicateNet { name: out_net });
            }
            order.push(out_net.clone());
            defs.insert(
                out_net,
                Def {
                    line: inst.line,
                    func,
                    inputs: in_nets,
                    instance: inst.name,
                },
            );
        }

        // Dependency-ordered emission (iterative DFS, cycle detecting).
        enum Task {
            Visit(String),
            Emit(String),
        }
        let mut in_progress: HashMap<String, bool> = HashMap::new();
        for root in &order {
            if resolved.contains_key(root) {
                continue;
            }
            let mut stack = vec![Task::Visit(root.clone())];
            while let Some(task) = stack.pop() {
                match task {
                    Task::Visit(net) => {
                        if resolved.contains_key(&net) {
                            continue;
                        }
                        if in_progress.get(&net).copied().unwrap_or(false) {
                            return Err(NetlistError::CombinationalCycle { near: net });
                        }
                        in_progress.insert(net.clone(), true);
                        let def = defs
                            .get(&net)
                            .ok_or_else(|| NetlistError::UndrivenNet { name: net.clone() })?;
                        stack.push(Task::Emit(net.clone()));
                        for dep in def.inputs.clone() {
                            if !resolved.contains_key(&dep) {
                                stack.push(Task::Visit(dep));
                            }
                        }
                    }
                    Task::Emit(net) => {
                        let def = &defs[&net];
                        let ids: Vec<NetId> =
                            def.inputs
                                .iter()
                                .map(|d| {
                                    resolved.get(d).copied().ok_or_else(|| {
                                        NetlistError::UndrivenNet { name: d.clone() }
                                    })
                                })
                                .collect::<Result<_, _>>()?;
                        let _ = &def.instance;
                        // Direct library-cell instantiations bypass the
                        // function decomposer; generic primitives go
                        // through it (wide gates get decomposed).
                        let direct = builder
                            .library()
                            .find(&def.func)
                            .map(|id| builder.library().cell(id).num_pins() == ids.len())
                            .unwrap_or(false);
                        let out = if direct {
                            let func = def.func.clone();
                            builder.add_gate(&func, &net, &ids)?
                        } else {
                            crate::bench::emit_function(&mut builder, &def.func, &net, &ids)
                                .map_err(|e| match e {
                                    NetlistError::ParseError { message, .. } => {
                                        NetlistError::ParseError {
                                            line: def.line,
                                            message,
                                        }
                                    }
                                    other => other,
                                })?
                        };
                        in_progress.insert(net.clone(), false);
                        resolved.insert(net, out);
                    }
                }
            }
        }

        for po in &outputs {
            let id = resolved
                .get(po)
                .copied()
                .ok_or_else(|| NetlistError::UndrivenNet { name: po.clone() })?;
            builder.mark_output(id);
        }
        builder.build()
    }

    /// Maps an instance to `(output net, input nets, bench-style function)`.
    fn resolve_ports(
        &self,
        kind: &str,
        line: usize,
        positional: Vec<String>,
        named: Vec<(String, String)>,
    ) -> Result<(String, Vec<String>, String), NetlistError> {
        let err = |message: String| NetlistError::ParseError { line, message };
        // An exact library-cell name wins over the primitive keywords (the
        // writer emits cells like `BUF` with named ports, which must not be
        // mistaken for the positional-only `buf` primitive).
        if self.library.find(kind).is_some() {
            return self.resolve_cell_ports(kind, line, positional, named);
        }
        let func = match kind.to_ascii_lowercase().as_str() {
            "and" => "AND",
            "nand" => "NAND",
            "or" => "OR",
            "nor" => "NOR",
            "xor" => "XOR",
            "xnor" => "XNOR",
            "not" => "NOT",
            "buf" => "BUFF",
            _ => return Err(err(format!("unknown cell or primitive {kind}"))),
        };
        let mut it = positional.into_iter();
        let out = it
            .next()
            .ok_or_else(|| err("primitive needs ports".into()))?;
        let ins: Vec<String> = it.collect();
        if ins.is_empty() {
            return Err(err("primitive needs at least one input".into()));
        }
        Ok((out, ins, func.to_owned()))
    }

    /// Resolves a library-cell instantiation with positional or named ports.
    fn resolve_cell_ports(
        &self,
        kind: &str,
        line: usize,
        positional: Vec<String>,
        named: Vec<(String, String)>,
    ) -> Result<(String, Vec<String>, String), NetlistError> {
        let err = |message: String| NetlistError::ParseError { line, message };
        // relia-lint: allow(unwrap-in-lib)
        let cell = self.library.find(kind).expect("caller checked the library");
        let n = self.library.cell(cell).num_pins();
        let (out, ins) = if !named.is_empty() {
            let mut out = None;
            let mut ins = vec![None; n];
            for (port, net) in named {
                if port == "Z" || port == "Y" || port == "OUT" {
                    out = Some(net);
                } else if let Some(idx) = port
                    .strip_prefix('I')
                    .or_else(|| port.strip_prefix('A'))
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    if idx >= n {
                        return Err(err(format!("port {port} out of range")));
                    }
                    ins[idx] = Some(net);
                } else {
                    return Err(err(format!("unknown port {port}")));
                }
            }
            let out = out.ok_or_else(|| err("missing output port Z".into()))?;
            let ins: Option<Vec<String>> = ins.into_iter().collect();
            (out, ins.ok_or_else(|| err("missing input port".into()))?)
        } else {
            let mut it = positional.into_iter();
            let out = it.next().ok_or_else(|| err("missing ports".into()))?;
            let ins: Vec<String> = it.collect();
            if ins.len() != n {
                return Err(err(format!(
                    "cell {kind} expects {n} inputs, got {}",
                    ins.len()
                )));
            }
            (out, ins)
        };
        Ok((out, ins, kind.to_owned()))
    }
}

/// Serializes a circuit as structural Verilog using library-cell
/// instantiations with named ports.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = circuit
        .primary_inputs()
        .iter()
        .chain(circuit.primary_outputs())
        .map(|&n| circuit.net(n).name())
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(circuit.name()),
        ports.join(", ")
    );
    let ins: Vec<&str> = circuit
        .primary_inputs()
        .iter()
        .map(|&n| circuit.net(n).name())
        .collect();
    let _ = writeln!(out, "  input {};", ins.join(", "));
    let outs: Vec<&str> = circuit
        .primary_outputs()
        .iter()
        .map(|&n| circuit.net(n).name())
        .collect();
    let _ = writeln!(out, "  output {};", outs.join(", "));
    let wires: Vec<&str> = circuit
        .gates()
        .iter()
        .map(|g| circuit.net(g.output()).name())
        .filter(|n| !outs.contains(n))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    for (k, &gid) in circuit.topo_order().iter().enumerate() {
        let gate = circuit.gate(gid);
        let cell = circuit.library().cell(gate.cell());
        let mut ports = vec![format!(".Z({})", circuit.net(gate.output()).name())];
        for (i, &input) in gate.inputs().iter().enumerate() {
            ports.push(format!(".I{i}({})", circuit.net(input).name()));
        }
        let _ = writeln!(out, "  {} u{k} ({});", cell.name(), ports.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        format!("m_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iscas;
    use relia_cells::Library;

    fn eval(c: &Circuit, pi: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.nets().len()];
        for (i, &p) in c.primary_inputs().iter().enumerate() {
            values[p.index()] = pi[i];
        }
        for &gid in c.topo_order() {
            let g = c.gate(gid);
            let ins: Vec<bool> = g.inputs().iter().map(|n| values[n.index()]).collect();
            values[g.output().index()] = c.library().cell(g.cell()).eval(&ins);
        }
        c.primary_outputs()
            .iter()
            .map(|p| values[p.index()])
            .collect()
    }

    const C17_V: &str = "
// ISCAS85 c17 in structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g10 (N10, N1, N3);
  nand g11 (N11, N3, N6);
  nand g16 (N16, N2, N11);
  nand g19 (N19, N11, N7);
  nand g22 (N22, N10, N16);
  nand g23 (N23, N16, N19);
endmodule
";

    #[test]
    fn c17_verilog_matches_builtin() {
        let parsed = parse(C17_V, Library::ptm90()).unwrap();
        let builtin = iscas::c17();
        assert_eq!(parsed.stats(), builtin.stats());
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&parsed, &v), eval(&builtin, &v), "{v:?}");
        }
    }

    #[test]
    fn named_cell_instantiation_works() {
        let src = "module m (a, b, c, y);
          input a, b, c; output y;
          wire t;
          AOI21 u1 (.Z(t), .I0(a), .I1(b), .I2(c));
          INV u2 (.Z(y), .I0(t));
        endmodule";
        let c = parse(src, Library::ptm90()).unwrap();
        assert_eq!(c.gates().len(), 2);
        // y = AB + C.
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&c, &v), vec![(v[0] && v[1]) || v[2]], "{v:?}");
        }
    }

    #[test]
    fn out_of_order_instances_resolve() {
        let src = "module m (a, y); input a; output y;
          wire t;
          not (y, t);
          not (t, a);
        endmodule";
        let c = parse(src, Library::ptm90()).unwrap();
        assert_eq!(eval(&c, &[true]), vec![true]);
    }

    #[test]
    fn comments_are_ignored() {
        let src = "/* header */ module m (a, y); // ports
          input a; output y;
          buf g (y, a); /* passthrough */
        endmodule";
        assert!(parse(src, Library::ptm90()).is_ok());
    }

    #[test]
    fn wide_primitives_decompose() {
        let src = "module m (a, b, c, d, e, y); input a, b, c, d, e; output y;
          nand g (y, a, b, c, d, e);
        endmodule";
        let c = parse(src, Library::ptm90()).unwrap();
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let want = !(v.iter().all(|&x| x));
            assert_eq!(eval(&c, &v), vec![want], "{v:?}");
        }
    }

    #[test]
    fn round_trip_preserves_function() {
        let c1 = iscas::c17();
        let text = write(&c1);
        let c2 = parse(&text, Library::ptm90()).unwrap();
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&c1, &v), eval(&c2, &v), "{v:?}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "module m (a, y);\ninput a;\noutput y;\nfrobnicate g (y, a);\nendmodule";
        match parse(src, Library::ptm90()) {
            Err(NetlistError::ParseError { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn cycle_is_detected() {
        let src = "module m (a, y); input a; output y; wire t;
          nand g1 (y, a, t);
          not g2 (t, y);
        endmodule";
        assert!(matches!(
            parse(src, Library::ptm90()),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }
}

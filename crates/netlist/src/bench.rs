//! ISCAS85 `.bench` format: parser and writer.
//!
//! The format:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G11 = NOT(G3)
//! ```
//!
//! Supported functions: `AND`, `NAND`, `OR`, `NOR`, `NOT`/`INV`,
//! `BUF`/`BUFF`, `XOR`, `XNOR`, at any arity. Gates wider than the library's
//! 4-input cells are decomposed into balanced trees; `AOI21`/`OAI21` cells
//! are decomposed into `AND`+`NOR` / `OR`+`NAND` pairs on export, so every
//! written file is readable by standard tools.

use std::collections::HashMap;
use std::fmt::Write as _;

use relia_cells::Library;

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, NetId};
use crate::error::NetlistError;

/// One parsed gate definition before elaboration.
#[derive(Debug, Clone)]
struct GateDef {
    line: usize,
    func: String,
    inputs: Vec<String>,
}

/// Parses `.bench` text into a [`Circuit`] over `library`.
///
/// Gate definitions may appear in any order; wide gates are decomposed onto
/// the library's 1–4-input cells.
///
/// # Errors
///
/// Returns [`NetlistError::ParseError`] for malformed lines, plus the usual
/// construction errors (undriven nets, cycles, missing outputs).
///
/// ```
/// use relia_cells::Library;
/// use relia_netlist::bench;
///
/// # fn main() -> Result<(), relia_netlist::NetlistError> {
/// let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let c = bench::parse(text, Library::ptm90())?;
/// assert_eq!(c.gates().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, library: Library) -> Result<Circuit, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: HashMap<String, GateDef> = HashMap::new();
    let mut def_order: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = parse_io_decl(line, "INPUT") {
            inputs.push(name.to_owned());
        } else if let Some(name) = parse_io_decl(line, "OUTPUT") {
            outputs.push(name.to_owned());
        } else if let Some((out, func, ins)) = parse_gate_line(line) {
            if defs.contains_key(&out) || inputs.contains(&out) {
                return Err(NetlistError::DuplicateNet { name: out });
            }
            defs.insert(
                out.clone(),
                GateDef {
                    line: lineno,
                    func,
                    inputs: ins,
                },
            );
            def_order.push(out);
        } else {
            return Err(NetlistError::ParseError {
                line: lineno,
                message: format!("unrecognized line: {line}"),
            });
        }
    }

    let mut builder = CircuitBuilder::new("bench", library);
    let mut resolved: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        if resolved.contains_key(name) {
            return Err(NetlistError::DuplicateNet { name: name.clone() });
        }
        let id = builder.add_input(name.clone());
        resolved.insert(name.clone(), id);
    }

    // Iterative DFS elaboration so forward references and deep circuits work.
    #[derive(Clone)]
    enum Task {
        Visit(String),
        Emit(String),
    }
    let mut in_progress: HashMap<String, bool> = HashMap::new();
    for root in &def_order {
        if resolved.contains_key(root) {
            continue;
        }
        let mut stack = vec![Task::Visit(root.clone())];
        while let Some(task) = stack.pop() {
            match task {
                Task::Visit(name) => {
                    if resolved.contains_key(&name) {
                        continue;
                    }
                    if in_progress.get(&name).copied().unwrap_or(false) {
                        return Err(NetlistError::CombinationalCycle { near: name });
                    }
                    in_progress.insert(name.clone(), true);
                    let def = defs
                        .get(&name)
                        .ok_or_else(|| NetlistError::UndrivenNet { name: name.clone() })?;
                    stack.push(Task::Emit(name.clone()));
                    for dep in def.inputs.clone() {
                        if !resolved.contains_key(&dep) {
                            stack.push(Task::Visit(dep));
                        }
                    }
                }
                Task::Emit(name) => {
                    let def = defs[&name].clone();
                    let input_ids: Vec<NetId> = def
                        .inputs
                        .iter()
                        .map(|dep| {
                            resolved
                                .get(dep)
                                .copied()
                                .ok_or_else(|| NetlistError::UndrivenNet { name: dep.clone() })
                        })
                        .collect::<Result<_, _>>()?;
                    let out = emit_function(&mut builder, &def.func, &name, &input_ids)
                        .map_err(|e| attach_line(e, def.line))?;
                    in_progress.insert(name.clone(), false);
                    resolved.insert(name, out);
                }
            }
        }
    }

    for name in &outputs {
        let id = resolved
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UndrivenNet { name: name.clone() })?;
        builder.mark_output(id);
    }
    builder.build()
}

fn attach_line(e: NetlistError, line: usize) -> NetlistError {
    match e {
        NetlistError::ParseError { message, .. } => NetlistError::ParseError { line, message },
        other => other,
    }
}

fn parse_io_decl<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    let name = rest.trim();
    (!name.is_empty()).then_some(name)
}

fn parse_gate_line(line: &str) -> Option<(String, String, Vec<String>)> {
    let (out, rhs) = line.split_once('=')?;
    let rhs = rhs.trim();
    let open = rhs.find('(')?;
    let close = rhs.rfind(')')?;
    if close < open {
        return None;
    }
    let func = rhs[..open].trim().to_ascii_uppercase();
    let args: Vec<String> = rhs[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if func.is_empty() || args.is_empty() {
        return None;
    }
    Some((out.trim().to_owned(), func, args))
}

/// Emits the library realization of a (possibly wide) logic function; the
/// final gate instance carries `name` so the output net matches the file.
/// Shared with the Verilog front end.
pub(crate) fn emit_function(
    b: &mut CircuitBuilder,
    func: &str,
    name: &str,
    inputs: &[NetId],
) -> Result<NetId, NetlistError> {
    let n = inputs.len();
    let unsupported = |msg: String| NetlistError::ParseError {
        line: 0,
        message: msg,
    };
    match (func, n) {
        ("NOT" | "INV", 1) => b.add_gate("INV", name, inputs),
        ("BUF" | "BUFF", 1) => b.add_gate("BUF", name, inputs),
        ("AND" | "NAND" | "OR" | "NOR" | "XOR" | "XNOR", 1) => {
            // Degenerate single-input forms: AND/OR/XOR pass through,
            // NAND/NOR/XNOR invert.
            if matches!(func, "AND" | "OR" | "XOR") {
                b.add_gate("BUF", name, inputs)
            } else {
                b.add_gate("INV", name, inputs)
            }
        }
        ("AND", 2..=3) => b.add_gate(&format!("AND{n}"), name, inputs),
        ("OR", 2..=3) => b.add_gate(&format!("OR{n}"), name, inputs),
        ("NAND", 2..=4) => b.add_gate(&format!("NAND{n}"), name, inputs),
        ("NOR", 2..=4) => b.add_gate(&format!("NOR{n}"), name, inputs),
        ("XOR", 2) => b.add_gate("XOR2", name, inputs),
        ("XNOR", 2) => b.add_gate("XNOR2", name, inputs),
        ("AND", _) => {
            let tree = reduce_tree(b, "AND", name, inputs, true)?;
            Ok(tree)
        }
        ("OR", _) => {
            let tree = reduce_tree(b, "OR", name, inputs, true)?;
            Ok(tree)
        }
        ("NAND", _) => {
            // NAND(x1..xn) = NAND2(AND(x1..x_{n-1}), xn).
            let head = reduce_tree(b, "AND", &format!("{name}__h"), &inputs[..n - 1], false)?;
            b.add_gate("NAND2", name, &[head, inputs[n - 1]])
        }
        ("NOR", _) => {
            let head = reduce_tree(b, "OR", &format!("{name}__h"), &inputs[..n - 1], false)?;
            b.add_gate("NOR2", name, &[head, inputs[n - 1]])
        }
        ("XOR", _) => {
            let mut acc = inputs[0];
            for (k, &next) in inputs[1..].iter().enumerate() {
                let inst = if k == n - 2 {
                    name.to_owned()
                } else {
                    format!("{name}__x{k}")
                };
                acc = b.add_gate("XOR2", inst, &[acc, next])?;
            }
            Ok(acc)
        }
        ("XNOR", _) => {
            let mut acc = inputs[0];
            for (k, &next) in inputs[1..].iter().take(n - 2).enumerate() {
                acc = b.add_gate("XOR2", format!("{name}__x{k}"), &[acc, next])?;
            }
            b.add_gate("XNOR2", name, &[acc, inputs[n - 1]])
        }
        _ => Err(unsupported(format!("unsupported function {func}/{n}"))),
    }
}

/// Builds a balanced AND/OR tree; when `final_named` the last gate carries
/// the caller's instance name.
fn reduce_tree(
    b: &mut CircuitBuilder,
    op: &str,
    name: &str,
    inputs: &[NetId],
    final_named: bool,
) -> Result<NetId, NetlistError> {
    assert!(!inputs.is_empty());
    let mut layer: Vec<NetId> = inputs.to_vec();
    let mut temp = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2 + 1);
        let mut i = 0;
        while i < layer.len() {
            let remaining = layer.len() - i;
            let take = if remaining == 1 {
                next.push(layer[i]);
                break;
            } else if remaining == 3 || remaining >= 5 {
                3.min(remaining)
            } else {
                2
            };
            let chunk = &layer[i..i + take];
            let is_last = remaining == take && next.is_empty();
            let inst = if is_last && final_named {
                name.to_owned()
            } else {
                temp += 1;
                format!("{name}__t{temp}")
            };
            let out = b.add_gate(&format!("{op}{take}"), inst, chunk)?;
            next.push(out);
            i += take;
        }
        layer = next;
    }
    Ok(layer[0])
}

/// Serializes a circuit to `.bench` text. `AOI21`/`OAI21` instances are
/// decomposed into two standard gates so the output stays portable; all
/// other cells map directly.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &pi in circuit.primary_inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net(pi).name());
    }
    for &po in circuit.primary_outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net(po).name());
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let cell = circuit.library().cell(gate.cell());
        let ins: Vec<&str> = gate
            .inputs()
            .iter()
            .map(|&n| circuit.net(n).name())
            .collect();
        let out_name = circuit.net(gate.output()).name();
        match cell.name() {
            "INV" => {
                let _ = writeln!(out, "{out_name} = NOT({})", ins[0]);
            }
            "BUF" => {
                let _ = writeln!(out, "{out_name} = BUFF({})", ins[0]);
            }
            "AOI21" => {
                let _ = writeln!(out, "{out_name}__a = AND({}, {})", ins[0], ins[1]);
                let _ = writeln!(out, "{out_name} = NOR({out_name}__a, {})", ins[2]);
            }
            "OAI21" => {
                let _ = writeln!(out, "{out_name}__o = OR({}, {})", ins[0], ins[1]);
                let _ = writeln!(out, "{out_name} = NAND({out_name}__o, {})", ins[2]);
            }
            name => {
                let func: String = name.trim_end_matches(char::is_numeric).to_owned();
                let _ = writeln!(out, "{out_name} = {func}({})", ins.join(", "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relia_cells::Library;

    fn lib() -> Library {
        Library::ptm90()
    }

    /// Evaluates a circuit's POs for given PI levels (test helper).
    fn eval(c: &Circuit, pi_values: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.nets().len()];
        for (i, &pi) in c.primary_inputs().iter().enumerate() {
            values[pi.index()] = pi_values[i];
        }
        for &gid in c.topo_order() {
            let g = c.gate(gid);
            let ins: Vec<bool> = g.inputs().iter().map(|n| values[n.index()]).collect();
            values[g.output().index()] = c.library().cell(g.cell()).eval(&ins);
        }
        c.primary_outputs()
            .iter()
            .map(|po| values[po.index()])
            .collect()
    }

    #[test]
    fn simple_parse() {
        let text = "# demo\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let c = parse(text, lib()).unwrap();
        assert_eq!(c.stats(), (2, 1, 1, 1));
        assert_eq!(eval(&c, &[true, true]), vec![false]);
        assert_eq!(eval(&c, &[true, false]), vec![true]);
    }

    #[test]
    fn forward_references_resolve() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n";
        let c = parse(text, lib()).unwrap();
        assert_eq!(eval(&c, &[true]), vec![true]);
    }

    #[test]
    fn wide_gates_decompose_correctly() {
        for (func, k, f) in [
            (
                "AND",
                6,
                (|v: &[bool]| v.iter().all(|&x| x)) as fn(&[bool]) -> bool,
            ),
            ("OR", 6, |v: &[bool]| v.iter().any(|&x| x)),
            ("NAND", 6, |v: &[bool]| !v.iter().all(|&x| x)),
            ("NOR", 6, |v: &[bool]| !v.iter().any(|&x| x)),
            ("XOR", 5, |v: &[bool]| {
                v.iter().filter(|&&x| x).count() % 2 == 1
            }),
            ("XNOR", 5, |v: &[bool]| {
                v.iter().filter(|&&x| x).count() % 2 == 0
            }),
        ] {
            let mut text = String::new();
            for i in 0..k {
                text.push_str(&format!("INPUT(i{i})\n"));
            }
            text.push_str("OUTPUT(y)\n");
            let args: Vec<String> = (0..k).map(|i| format!("i{i}")).collect();
            text.push_str(&format!("y = {func}({})\n", args.join(", ")));
            let c = parse(&text, lib()).unwrap();
            for bits in 0..(1u32 << k) {
                let v: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(eval(&c, &v)[0], f(&v), "{func}{k} on {v:?}");
            }
        }
    }

    #[test]
    fn cycle_is_detected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, z)\nz = NOT(y)\n";
        assert!(matches!(
            parse(text, lib()),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn undriven_net_is_detected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n";
        assert!(matches!(
            parse(text, lib()),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let text = "INPUT(a)\nOUTPUT(y)\nthis is not a gate\n";
        match parse(text, lib()) {
            Err(NetlistError::ParseError { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_function() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
                    t1 = NAND(a, b)\nt2 = NOR(b, c)\ny = XOR(t1, t2)\nz = NOT(t1)\n";
        let c1 = parse(text, lib()).unwrap();
        let written = write(&c1);
        let c2 = parse(&written, lib()).unwrap();
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&c1, &v), eval(&c2, &v), "inputs {v:?}");
        }
    }

    #[test]
    fn aoi_writes_portable_decomposition() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        let c_in = b.add_input("b");
        let d = b.add_input("c");
        let y = b.add_gate("AOI21", "y", &[a, c_in, d]).unwrap();
        b.mark_output(y);
        let c1 = b.build().unwrap();
        let c2 = parse(&write(&c1), lib()).unwrap();
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval(&c1, &v), eval(&c2, &v), "inputs {v:?}");
        }
    }
}

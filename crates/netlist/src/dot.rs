//! Graphviz DOT export for circuit visualization and debugging.

use std::fmt::Write as _;

use crate::circuit::Circuit;

/// Options for DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotOptions {
    /// Rank gates left-to-right by logic level.
    pub rank_by_level: bool,
    /// Include net names on edges.
    pub edge_labels: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            rank_by_level: true,
            edge_labels: false,
        }
    }
}

/// Renders the circuit as a Graphviz `digraph`.
///
/// Primary inputs are plain ovals, gates are boxes labeled
/// `instance\ncell`, primary outputs are double ovals.
///
/// ```
/// use relia_netlist::{dot, iscas};
///
/// let text = dot::to_dot(&iscas::c17(), &dot::DotOptions::default());
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("NAND2"));
/// ```
pub fn to_dot(circuit: &Circuit, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");

    for &pi in circuit.primary_inputs() {
        let _ = writeln!(
            out,
            "  \"n{}\" [label=\"{}\", shape=oval];",
            pi.index(),
            escape(circuit.net(pi).name())
        );
    }
    for (gi, gate) in circuit.gates().iter().enumerate() {
        let cell = circuit.library().cell(gate.cell());
        let shape = if circuit.is_primary_output(gate.output()) {
            "doubleoctagon"
        } else {
            "box"
        };
        let _ = writeln!(
            out,
            "  \"g{gi}\" [label=\"{}\\n{}\", shape={shape}];",
            escape(gate.name()),
            cell.name()
        );
    }

    // Edges: driver -> consumer.
    for (gi, gate) in circuit.gates().iter().enumerate() {
        for &input in gate.inputs() {
            let src = match circuit.net(input).driver() {
                crate::circuit::NetDriver::PrimaryInput => format!("n{}", input.index()),
                crate::circuit::NetDriver::Gate(g) => format!("g{}", g.index()),
            };
            if options.edge_labels {
                let _ = writeln!(
                    out,
                    "  \"{src}\" -> \"g{gi}\" [label=\"{}\"];",
                    escape(circuit.net(input).name())
                );
            } else {
                let _ = writeln!(out, "  \"{src}\" -> \"g{gi}\";");
            }
        }
    }

    if options.rank_by_level {
        let max_level = circuit.depth();
        for level in 1..=max_level {
            let members: Vec<String> = circuit
                .topo_order()
                .iter()
                .filter(|g| circuit.gate_level(**g) == level)
                .map(|g| format!("\"g{}\"", g.index()))
                .collect();
            if !members.is_empty() {
                let _ = writeln!(out, "  {{ rank=same; {} }}", members.join("; "));
            }
        }
    }

    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iscas;

    #[test]
    fn dot_contains_all_gates_and_inputs() {
        let c = iscas::c17();
        let text = to_dot(&c, &DotOptions::default());
        for g in c.gates() {
            assert!(
                text.contains(&format!("\"{}\\nNAND2\"", g.name())),
                "{}",
                g.name()
            );
        }
        assert_eq!(text.matches(" -> ").count(), 12); // 6 gates x 2 inputs
    }

    #[test]
    fn outputs_are_marked() {
        let c = iscas::c17();
        let text = to_dot(&c, &DotOptions::default());
        assert_eq!(text.matches("doubleoctagon").count(), 2);
    }

    #[test]
    fn edge_labels_optional() {
        let c = iscas::c17();
        let plain = to_dot(&c, &DotOptions::default());
        let labeled = to_dot(
            &c,
            &DotOptions {
                edge_labels: true,
                ..DotOptions::default()
            },
        );
        assert!(labeled.len() > plain.len());
    }

    #[test]
    fn rank_groups_match_depth() {
        let c = iscas::c17();
        let text = to_dot(&c, &DotOptions::default());
        assert_eq!(text.matches("rank=same").count(), c.depth());
    }
}

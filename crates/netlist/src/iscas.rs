//! The benchmark suite: the genuine ISCAS85 `c17`, plus deterministic
//! synthetic stand-ins for the larger ISCAS85 circuits.
//!
//! The original ISCAS85 netlist files are not redistributable within this
//! repository, so for every benchmark beyond `c17` we generate a circuit
//! with the *published* primary-input / primary-output / gate-count / depth
//! statistics, a representative gate-type mix, and locality-biased wiring.
//! The experiments the paper runs over these circuits aggregate hundreds of
//! gates (critical-path degradation, total leakage), so matched statistics
//! exercise the same code paths and reproduce the same trends. Genuine
//! `.bench` files can be dropped in through [`crate::bench::parse`] at any
//! time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relia_cells::Library;

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, NetId};
use crate::error::NetlistError;

/// Published statistics of one ISCAS85 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `"c432"`).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Logic depth.
    pub depth: usize,
}

/// The ISCAS85 suite statistics (inputs, outputs, gates, depth).
pub const SPECS: [BenchmarkSpec; 10] = [
    BenchmarkSpec {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 160,
        depth: 17,
    },
    BenchmarkSpec {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 202,
        depth: 11,
    },
    BenchmarkSpec {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 383,
        depth: 24,
    },
    BenchmarkSpec {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 546,
        depth: 24,
    },
    BenchmarkSpec {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 880,
        depth: 40,
    },
    BenchmarkSpec {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 1193,
        depth: 32,
    },
    BenchmarkSpec {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1669,
        depth: 47,
    },
    BenchmarkSpec {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 2307,
        depth: 49,
    },
    BenchmarkSpec {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        gates: 2416,
        depth: 124,
    },
    BenchmarkSpec {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 3512,
        depth: 43,
    },
];

/// The genuine ISCAS85 `c17` circuit (6 NAND2 gates).
///
/// ```
/// use relia_netlist::iscas;
///
/// let c = iscas::c17();
/// assert_eq!(c.stats(), (5, 2, 6, 3));
/// ```
pub fn c17() -> Circuit {
    // relia-lint: allow(unwrap-in-lib)
    try_c17().expect("c17 is valid by construction")
}

/// The genuine `c17`, with construction errors propagated instead of
/// panicking (they cannot occur for this fixed netlist, but callers that
/// forbid panics get a typed path).
///
/// # Errors
///
/// Returns [`NetlistError`] if circuit construction rejects the netlist.
pub fn try_c17() -> Result<Circuit, NetlistError> {
    let mut b = CircuitBuilder::new("c17", Library::ptm90());
    let n1 = b.add_input("1");
    let n2 = b.add_input("2");
    let n3 = b.add_input("3");
    let n6 = b.add_input("6");
    let n7 = b.add_input("7");
    let n10 = b.add_gate("NAND2", "10", &[n1, n3])?;
    let n11 = b.add_gate("NAND2", "11", &[n3, n6])?;
    let n16 = b.add_gate("NAND2", "16", &[n2, n11])?;
    let n19 = b.add_gate("NAND2", "19", &[n11, n7])?;
    let n22 = b.add_gate("NAND2", "22", &[n10, n16])?;
    let n23 = b.add_gate("NAND2", "23", &[n16, n19])?;
    let _ = n10;
    b.mark_output(n22);
    b.mark_output(n23);
    b.build()
}

/// Gate-type mix used by the synthetic generator: `(cell, weight)`.
const CELL_MIX: [(&str, u32); 12] = [
    ("NAND2", 30),
    ("NOR2", 14),
    ("INV", 14),
    ("NAND3", 8),
    ("AND2", 8),
    ("OR2", 6),
    ("NOR3", 5),
    ("AOI21", 4),
    ("OAI21", 4),
    ("XOR2", 3),
    ("NAND4", 2),
    ("BUF", 2),
];

fn name_seed(name: &str) -> u64 {
    // FNV-1a, so each benchmark is deterministic but distinct.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates the synthetic stand-in for `spec` (deterministic per name).
pub fn synthesize(spec: &BenchmarkSpec) -> Circuit {
    // relia-lint: allow(unwrap-in-lib)
    try_synthesize(spec).expect("generated circuits are valid by construction")
}

/// Like [`synthesize`], with construction errors propagated as typed
/// [`NetlistError`]s instead of panicking.
///
/// # Errors
///
/// Returns [`NetlistError`] if a generated gate names a cell the library
/// lacks or the built circuit fails validation.
pub fn try_synthesize(spec: &BenchmarkSpec) -> Result<Circuit, NetlistError> {
    let mut rng = StdRng::seed_from_u64(name_seed(spec.name));
    let mut b = CircuitBuilder::new(spec.name, Library::ptm90());

    let pis: Vec<NetId> = (0..spec.inputs)
        .map(|i| b.add_input(format!("pi{i}")))
        .collect();

    // Distribute gates across `depth` levels, at least one per level, the
    // rest spread randomly (middle-heavy).
    let mut level_sizes = vec![1usize; spec.depth];
    let mut remaining = spec.gates - spec.depth;
    while remaining > 0 {
        let idx = middle_biased_index(&mut rng, spec.depth);
        level_sizes[idx] += 1;
        remaining -= 1;
    }

    let total_weight: u32 = CELL_MIX.iter().map(|(_, w)| w).sum();
    let mut levels: Vec<Vec<NetId>> = vec![pis.clone()];
    let mut use_count: Vec<u32> = vec![0; spec.inputs];
    let mut gate_no = 0usize;

    for &size in &level_sizes {
        let mut this_level = Vec::with_capacity(size);
        for k in 0..size {
            let cell = pick_cell(&mut rng, total_weight);
            let arity = b
                .library()
                .find(cell)
                .map(|id| b.library().cell(id).num_pins())
                .ok_or_else(|| NetlistError::UnknownCell {
                    name: cell.to_owned(),
                })?;
            let mut inputs = Vec::with_capacity(arity);
            // The first gate of each level anchors the depth: its first
            // input comes from the previous level.
            // The primary-input level is pushed before this loop runs.
            // relia-lint: allow(unwrap-in-lib)
            let prev = levels.last().expect("level 0 exists");
            let first = if k == 0 || rng.gen_bool(0.7) {
                tournament_pick(&mut rng, prev, &use_count)
            } else {
                pick_from_history(&mut rng, &levels, &use_count)
            };
            inputs.push(first);
            use_count[first.index()] += 1;
            for _ in 1..arity {
                let pick = pick_from_history(&mut rng, &levels, &use_count);
                inputs.push(pick);
                use_count[pick.index()] += 1;
            }
            gate_no += 1;
            let out = b.add_gate(cell, format!("g{gate_no}"), &inputs)?;
            debug_assert_eq!(out.index(), use_count.len());
            use_count.push(0);
            this_level.push(out);
        }
        levels.push(this_level);
    }

    // Primary outputs: every unconsumed gate output must escape somewhere,
    // then top up from the deepest levels until the spec count is reached.
    let mut pos: Vec<NetId> = use_count
        .iter()
        .enumerate()
        .skip(spec.inputs)
        .filter(|(_, &c)| c == 0)
        .map(|(i, _)| NetId(i))
        .collect();
    'outer: for level in levels.iter().rev() {
        for &net in level {
            if pos.len() >= spec.outputs {
                break 'outer;
            }
            if !pos.contains(&net) {
                pos.push(net);
            }
        }
    }
    for po in pos {
        b.mark_output(po);
    }
    b.build()
}

fn middle_biased_index(rng: &mut StdRng, depth: usize) -> usize {
    // Average of two uniforms: triangular distribution peaking mid-depth.
    let a = rng.gen_range(0..depth);
    let b = rng.gen_range(0..depth);
    (a + b) / 2
}

fn pick_cell(rng: &mut StdRng, total_weight: u32) -> &'static str {
    let mut roll = rng.gen_range(0..total_weight);
    for (cell, w) in CELL_MIX {
        if roll < w {
            return cell;
        }
        roll -= w;
    }
    unreachable!("weights cover the roll range")
}

/// Picks from `candidates`, preferring less-used nets (2-way tournament).
fn tournament_pick(rng: &mut StdRng, candidates: &[NetId], use_count: &[u32]) -> NetId {
    let a = candidates[rng.gen_range(0..candidates.len())];
    let b = candidates[rng.gen_range(0..candidates.len())];
    if use_count[a.index()] <= use_count[b.index()] {
        a
    } else {
        b
    }
}

/// Picks a net from any earlier level, biased toward recent levels.
fn pick_from_history(rng: &mut StdRng, levels: &[Vec<NetId>], use_count: &[u32]) -> NetId {
    // Geometric walk back from the latest level.
    let mut li = levels.len() - 1;
    while li > 0 && rng.gen_bool(0.45) {
        li -= 1;
    }
    tournament_pick(rng, &levels[li], use_count)
}

/// Builds a benchmark by name: `"c17"` is the genuine circuit; the rest are
/// synthesized from [`SPECS`]. Returns `None` for unknown names.
///
/// ```
/// use relia_netlist::iscas;
///
/// let c432 = iscas::circuit("c432").expect("known benchmark");
/// assert_eq!(c432.gates().len(), 160);
/// assert_eq!(c432.depth(), 17);
/// ```
pub fn circuit(name: &str) -> Option<Circuit> {
    try_circuit(name).ok()
}

/// Like [`circuit`], but an unknown name (or a construction failure) is a
/// typed [`NetlistError`] carrying the benchmark catalog — the form batch
/// tooling wants for its diagnostics.
///
/// # Errors
///
/// [`NetlistError::UnknownBenchmark`] for names outside the suite;
/// construction errors from the generator otherwise.
pub fn try_circuit(name: &str) -> Result<Circuit, NetlistError> {
    if name == "c17" {
        return try_c17();
    }
    match SPECS.iter().find(|s| s.name == name) {
        Some(spec) => try_synthesize(spec),
        None => Err(NetlistError::UnknownBenchmark {
            name: name.to_owned(),
        }),
    }
}

/// The benchmark names the paper's tables iterate over, smallest first.
pub fn names() -> Vec<&'static str> {
    let mut v = vec!["c17"];
    v.extend(SPECS.iter().map(|s| s.name));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_truth_sample() {
        let c = c17();
        // Evaluate through the structural path: all-zero inputs.
        let mut values = vec![false; c.nets().len()];
        for &pi in c.primary_inputs() {
            values[pi.index()] = false;
        }
        for &gid in c.topo_order() {
            let g = c.gate(gid);
            let ins: Vec<bool> = g.inputs().iter().map(|n| values[n.index()]).collect();
            values[g.output().index()] = c.library().cell(g.cell()).eval(&ins);
        }
        // NAND trees on all-zero inputs: every first-level NAND is 1,
        // 16 = NAND(0, 1) = 1, 22 = NAND(1,1) = 0, 23 = NAND(1,1) = 0.
        let po: Vec<bool> = c
            .primary_outputs()
            .iter()
            .map(|p| values[p.index()])
            .collect();
        assert_eq!(po, vec![false, false]);
    }

    #[test]
    fn synthetic_matches_spec_exactly_where_promised() {
        for spec in &SPECS[..4] {
            let c = synthesize(spec);
            let (pi, po, gates, depth) = c.stats();
            assert_eq!(pi, spec.inputs, "{}", spec.name);
            assert_eq!(gates, spec.gates, "{}", spec.name);
            assert_eq!(depth, spec.depth, "{}", spec.name);
            // PO count is at least the spec (unconsumed nets also escape).
            assert!(
                po >= spec.outputs,
                "{}: po {po} < {}",
                spec.name,
                spec.outputs
            );
            assert!(
                po <= spec.outputs + spec.gates / 4,
                "{}: po {po} inflated",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = circuit("c432").unwrap();
        let b = circuit("c432").unwrap();
        assert_eq!(a.gates().len(), b.gates().len());
        for (ga, gb) in a.gates().iter().zip(b.gates()) {
            assert_eq!(ga.cell(), gb.cell());
            assert_eq!(ga.inputs(), gb.inputs());
        }
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = circuit("c432").unwrap();
        let b = circuit("c499").unwrap();
        assert_ne!(a.gates().len(), b.gates().len());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(circuit("c9000").is_none());
        match try_circuit("c9000") {
            Err(NetlistError::UnknownBenchmark { name }) => assert_eq!(name, "c9000"),
            other => panic!("expected UnknownBenchmark, got {other:?}"),
        }
        assert!(try_circuit("c9000")
            .unwrap_err()
            .to_string()
            .contains("c432"));
    }

    #[test]
    fn names_cover_suite() {
        assert_eq!(names().len(), 11);
        assert_eq!(names()[0], "c17");
    }
}

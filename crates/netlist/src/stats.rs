//! Summary statistics of a circuit (cell histogram, fan-out profile).

use std::collections::BTreeMap;

use crate::circuit::Circuit;

/// Aggregate statistics of one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gate instances.
    pub gates: usize,
    /// Logic depth.
    pub depth: usize,
    /// Instances per cell type, sorted by name.
    pub cell_histogram: BTreeMap<String, usize>,
    /// Largest net fan-out.
    pub max_fanout: usize,
    /// Mean net fan-out over driven nets.
    pub mean_fanout: f64,
    /// Total PMOS devices (the NBTI-susceptible population).
    pub pmos_devices: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    ///
    /// ```
    /// use relia_netlist::{iscas, stats::CircuitStats};
    ///
    /// let s = CircuitStats::of(&iscas::c17());
    /// assert_eq!(s.gates, 6);
    /// assert_eq!(s.cell_histogram["NAND2"], 6);
    /// assert_eq!(s.pmos_devices, 12);
    /// ```
    pub fn of(circuit: &Circuit) -> Self {
        let mut cell_histogram: BTreeMap<String, usize> = BTreeMap::new();
        let mut pmos_devices = 0;
        for gate in circuit.gates() {
            let cell = circuit.library().cell(gate.cell());
            *cell_histogram.entry(cell.name().to_owned()).or_insert(0) += 1;
            pmos_devices += cell.pmos_count();
        }
        let fanouts: Vec<usize> = circuit
            .gates()
            .iter()
            .map(|g| circuit.fanout(g.output()).len())
            .collect();
        let max_fanout = circuit
            .nets()
            .iter()
            .enumerate()
            .map(|(i, _)| circuit.fanout(crate::circuit::NetId(i)).len())
            .max()
            .unwrap_or(0);
        let mean_fanout = if fanouts.is_empty() {
            0.0
        } else {
            fanouts.iter().sum::<usize>() as f64 / fanouts.len() as f64
        };
        let (inputs, outputs, gates, depth) = circuit.stats();
        CircuitStats {
            inputs,
            outputs,
            gates,
            depth,
            cell_histogram,
            max_fanout,
            mean_fanout,
            pmos_devices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iscas;

    #[test]
    fn c17_stats() {
        let s = CircuitStats::of(&iscas::c17());
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.depth, 3);
        assert_eq!(s.cell_histogram.len(), 1);
        assert!(s.max_fanout >= 2);
        assert!(s.mean_fanout > 0.0);
    }

    #[test]
    fn synthetic_histogram_spans_families() {
        let s = CircuitStats::of(&iscas::circuit("c880").expect("known"));
        assert!(
            s.cell_histogram.len() >= 8,
            "only {:?}",
            s.cell_histogram.keys()
        );
        assert_eq!(s.cell_histogram.values().sum::<usize>(), s.gates);
        assert!(
            s.pmos_devices > s.gates,
            "NOR/AOI stages carry multiple PMOS"
        );
    }
}

//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Error returned by circuit construction and `.bench` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net name was declared twice.
    DuplicateNet {
        /// The clashing name.
        name: String,
    },
    /// A gate references a net that was never declared or driven.
    UndrivenNet {
        /// The offending net name.
        name: String,
    },
    /// A gate's input count does not match its cell's pin count.
    ArityMismatch {
        /// Gate instance name.
        gate: String,
        /// Cell name.
        cell: String,
        /// Pins the cell expects.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle {
        /// A net on the cycle.
        near: String,
    },
    /// The library does not contain the requested cell.
    UnknownCell {
        /// The requested cell name.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The circuit has no primary outputs.
    NoOutputs,
    /// The requested name is not a benchmark this build knows.
    UnknownBenchmark {
        /// The requested benchmark name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet { name } => write!(f, "net {name} declared twice"),
            NetlistError::UndrivenNet { name } => write!(f, "net {name} is never driven"),
            NetlistError::ArityMismatch {
                gate,
                cell,
                expected,
                got,
            } => write!(
                f,
                "gate {gate}: cell {cell} expects {expected} inputs, got {got}"
            ),
            NetlistError::CombinationalCycle { near } => {
                write!(f, "combinational cycle near net {near}")
            }
            NetlistError::UnknownCell { name } => write!(f, "unknown cell {name}"),
            NetlistError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::UnknownBenchmark { name } => {
                write!(
                    f,
                    "{name:?} is not a builtin benchmark (try one of {:?})",
                    crate::iscas::names()
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = NetlistError::ArityMismatch {
            gate: "g1".into(),
            cell: "NAND2".into(),
            expected: 2,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("g1") && s.contains("NAND2"));
    }
}

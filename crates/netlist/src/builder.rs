//! Programmatic circuit construction with validation.

use std::collections::HashMap;

use relia_cells::Library;

use crate::circuit::{Circuit, Gate, GateId, Net, NetDriver, NetId};
use crate::error::NetlistError;

/// Incrementally builds a [`Circuit`], validating names, arities, and
/// acyclicity.
///
/// ```
/// use relia_cells::Library;
/// use relia_netlist::CircuitBuilder;
///
/// # fn main() -> Result<(), relia_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("half_adder", Library::ptm90());
/// let a = b.add_input("a");
/// let c = b.add_input("b");
/// let sum = b.add_gate("XOR2", "sum", &[a, c])?;
/// let carry = b.add_gate("AND2", "carry", &[a, c])?;
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let circuit = b.build()?;
/// assert_eq!(circuit.gates().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    library: Library,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
}

impl CircuitBuilder {
    /// Starts a new circuit over `library`.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        CircuitBuilder {
            name: name.into(),
            library,
            nets: Vec::new(),
            gates: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            net_names: HashMap::new(),
        }
    }

    /// The library the builder maps onto.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Declares a primary input net and returns its id. The name is made
    /// unique if it clashes (a numeric suffix is appended).
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = self.unique_name(name.into());
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.clone(),
            driver: NetDriver::PrimaryInput,
        });
        self.net_names.insert(name, id);
        self.primary_inputs.push(id);
        id
    }

    /// Adds a gate instance of cell `cell_name` driven by `inputs`, creating
    /// and returning its output net (named after the instance).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] or
    /// [`NetlistError::ArityMismatch`].
    pub fn add_gate(
        &mut self,
        cell_name: &str,
        instance: impl Into<String>,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let cell_id = self
            .library
            .find(cell_name)
            .ok_or_else(|| NetlistError::UnknownCell {
                name: cell_name.to_owned(),
            })?;
        let instance = instance.into();
        let expected = self.library.cell(cell_id).num_pins();
        if inputs.len() != expected {
            return Err(NetlistError::ArityMismatch {
                gate: instance,
                cell: cell_name.to_owned(),
                expected,
                got: inputs.len(),
            });
        }
        let gate_id = GateId(self.gates.len());
        let net_name = self.unique_name(instance.clone());
        let out = NetId(self.nets.len());
        self.nets.push(Net {
            name: net_name.clone(),
            driver: NetDriver::Gate(gate_id),
        });
        self.net_names.insert(net_name, out);
        self.gates.push(Gate {
            name: instance,
            cell: cell_id,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Marks a net as a primary output (idempotent).
    pub fn mark_output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Looks up a previously created net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Number of gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Finalizes the circuit: checks that at least one output exists,
    /// computes the topological order (the construction API is inherently
    /// acyclic, but the order is recomputed and verified), logic levels, and
    /// fan-out maps.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutputs`] for an output-less circuit or
    /// [`NetlistError::CombinationalCycle`] if internal invariants are
    /// violated.
    pub fn build(self) -> Result<Circuit, NetlistError> {
        if self.primary_outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }

        let num_gates = self.gates.len();
        let num_nets = self.nets.len();

        // Fan-out map.
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); num_nets];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                fanout[input.0].push(GateId(gi));
            }
        }

        // Kahn topological sort over gates.
        let mut indegree: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|n| matches!(self.nets[n.0].driver, NetDriver::Gate(_)))
                    .count()
            })
            .collect();
        let mut queue: Vec<GateId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| GateId(i))
            .collect();
        let mut topo = Vec::with_capacity(num_gates);
        let mut levels = vec![0usize; num_gates];
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            topo.push(g);
            let level = 1 + self.gates[g.0]
                .inputs
                .iter()
                .map(|n| match self.nets[n.0].driver {
                    NetDriver::PrimaryInput => 0,
                    NetDriver::Gate(src) => levels[src.0],
                })
                .max()
                .unwrap_or(0);
            levels[g.0] = level;
            for &succ in &fanout[self.gates[g.0].output.0] {
                indegree[succ.0] -= 1;
                if indegree[succ.0] == 0 {
                    queue.push(succ);
                }
            }
        }
        if topo.len() != num_gates {
            let stuck = (0..num_gates)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.nets[self.gates[i].output.0].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { near: stuck });
        }

        let mut is_po = vec![false; num_nets];
        for &po in &self.primary_outputs {
            is_po[po.0] = true;
        }

        Ok(Circuit {
            name: self.name,
            library: self.library,
            nets: self.nets,
            gates: self.gates,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            topo,
            levels,
            fanout,
            is_po,
        })
    }

    fn unique_name(&self, base: String) -> String {
        if !self.net_names.contains_key(&base) {
            return base;
        }
        let mut k = 1;
        loop {
            let candidate = format!("{base}_{k}");
            if !self.net_names.contains_key(&candidate) {
                return candidate;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::ptm90()
    }

    #[test]
    fn arity_is_checked() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        assert!(matches!(
            b.add_gate("NAND2", "g", &[a]),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        assert!(matches!(
            b.add_gate("NAND17", "g", &[a]),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn outputs_required() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        b.add_gate("INV", "g", &[a]).unwrap();
        assert!(matches!(b.build(), Err(NetlistError::NoOutputs)));
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("x");
        let n1 = b.add_gate("INV", "x", &[a]).unwrap();
        b.mark_output(n1);
        let c = b.build().unwrap();
        assert_eq!(c.net(a).name(), "x");
        assert_eq!(c.net(n1).name(), "x_1");
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        let x = b.add_gate("INV", "g1", &[a]).unwrap();
        let y = b.add_gate("INV", "g2", &[x]).unwrap();
        let z = b.add_gate("NAND2", "g3", &[x, y]).unwrap();
        b.mark_output(z);
        let c = b.build().unwrap();
        let pos: Vec<usize> = c
            .topo_order()
            .iter()
            .map(|g| c.gate(*g).name().trim_start_matches('g').parse().unwrap())
            .collect();
        let idx = |n: usize| pos.iter().position(|&p| p == n).unwrap();
        assert!(idx(1) < idx(2));
        assert!(idx(2) < idx(3));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut b = CircuitBuilder::new("t", lib());
        let a = b.add_input("a");
        let n = b.add_gate("INV", "g", &[a]).unwrap();
        b.mark_output(n);
        b.mark_output(n);
        let c = b.build().unwrap();
        assert_eq!(c.primary_outputs().len(), 1);
    }
}

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! # relia-netlist
//!
//! Gate-level netlist substrate: a validated combinational DAG over cells
//! from a [`relia_cells::Library`], with ISCAS85 `.bench` import/export and a
//! built-in benchmark suite.
//!
//! * [`circuit`] — the [`Circuit`] DAG (nets, gates, primary I/O, fan-out
//!   maps, topological order).
//! * [`builder`] — [`CircuitBuilder`] for programmatic construction with
//!   validation (arity checks, acyclicity, driven-ness).
//! * [`mod@bench`] — the ISCAS85 `.bench` text format: parser (with decomposition
//!   of wide gates onto the 1–4-input library) and writer.
//! * [`verilog`] — structural gate-level Verilog (subset): parser + writer.
//! * [`dot`] — Graphviz export for visualization.
//! * [`iscas`] — the benchmark suite: the genuine ISCAS85 `c17`, plus
//!   deterministic synthetic stand-ins matching the published size/depth
//!   statistics of the larger ISCAS85 circuits (see `DESIGN.md` for the
//!   substitution rationale).
//!
//! ```
//! use relia_netlist::iscas;
//!
//! let c17 = iscas::c17();
//! assert_eq!(c17.primary_inputs().len(), 5);
//! assert_eq!(c17.primary_outputs().len(), 2);
//! assert_eq!(c17.gates().len(), 6);
//! ```

pub mod bench;
pub mod builder;
pub mod circuit;
pub mod dot;
pub mod error;
pub mod iscas;
pub mod stats;
pub mod verilog;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Gate, GateId, Net, NetDriver, NetId};
pub use error::NetlistError;

#!/usr/bin/env sh
# Full local gate: build, tests, formatting, lints — all offline-safe.
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> cargo test (fault injection)"
cargo test -q --offline -p relia-jobs --features fault-inject

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo clippy --offline -p relia-jobs --all-targets --features fault-inject -- -D warnings

echo "==> relia-lint (unit & reliability invariants)"
cargo run -q --offline -p relia-lint

echo "==> all checks passed"

#!/usr/bin/env sh
# Full local gate: build, tests, formatting, lints — all offline-safe.
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> cargo test (fault injection)"
cargo test -q --offline -p relia-jobs --features fault-inject
cargo test -q --offline -p relia-serve --features fault-inject

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo clippy --offline -p relia-jobs --all-targets --features fault-inject -- -D warnings
cargo clippy --offline -p relia-serve --all-targets --features fault-inject -- -D warnings

echo "==> relia lint (unit, reliability & concurrency invariants)"
# Workspace-wide, machine-readable, parallel; any non-suppressed finding
# fails the gate. JSON keeps the failure output one-line-per-finding.
target/release/relia lint --format json --jobs 4

echo "==> relia serve (boot, loadgen smoke, graceful drain)"
# Boot the real CLI binary on an ephemeral port, fire 1k mixed requests
# through the byte-parity load generator, and let it drain the server via
# POST /admin/shutdown. Both processes must exit 0.
serve_log="$(mktemp)"
target/release/relia serve --addr 127.0.0.1:0 --threads 4 >"$serve_log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's/^relia-serve listening on //p' "$serve_log")"
    [ -n "$serve_addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "relia serve died before binding:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "relia serve never printed its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
cargo run -q --offline --release -p relia-serve --example loadgen -- \
    --requests 1000 --threads 2 --addr "$serve_addr"
wait "$serve_pid"
rm -f "$serve_log"

echo "==> relia serve (observability: /metrics histograms, /debug/trace shape)"
# Boot the real CLI with tracing on, fire degrade traffic through the
# probe, and validate the observability surface: build info + uptime on
# /metrics, every phase histogram with non-decreasing cumulative buckets
# and a consistent +Inf/_count pair, and /debug/trace JSON of the pinned
# span schema. The probe exits non-zero on any shape violation.
obs_log="$(mktemp)"
target/release/relia serve --addr 127.0.0.1:0 --threads 2 --trace 256 >"$obs_log" &
obs_pid=$!
obs_addr=""
for _ in $(seq 1 100); do
    obs_addr="$(sed -n 's/^relia-serve listening on //p' "$obs_log")"
    [ -n "$obs_addr" ] && break
    if ! kill -0 "$obs_pid" 2>/dev/null; then
        echo "relia serve died before binding:" >&2
        cat "$obs_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$obs_addr" ]; then
    echo "relia serve never printed its address" >&2
    kill "$obs_pid" 2>/dev/null || true
    exit 1
fi
cargo run -q --offline --release -p relia-serve --example obs_probe -- --addr "$obs_addr"
wait "$obs_pid"
rm -f "$obs_log"

echo "==> relia serve (chaos: seeded socket faults, overload, drain)"
# Self-hosted chaos run: 48 connections through a seeded mix of socket
# faults (slow dribbles, short writes, mid-body disconnects, truncation,
# stalled keep-alives). The example asserts the metrics ledger balances,
# no worker dies, and graceful drain completes — exit 0 or the gate fails.
cargo run -q --offline --release -p relia-serve --features fault-inject \
    --example chaos -- --seed 7 --conns 48 --threads 4

echo "==> relia fleet (10k smoke, percentile sanity, resume)"
# One 10k-sample run through the release CLI, a sanity pass over the
# printed table (every statistic finite, p50 <= p90 <= p99 per row), then
# a resume from the checkpoint that must print byte-identical output.
fleet_ckpt="$(mktemp -u)"
fleet_first="$(target/release/relia fleet --samples 10000 --checkpoint "$fleet_ckpt" 2>/dev/null)"
printf '%s\n' "$fleet_first" | grep -q "lifetime: p01" || {
    echo "fleet output lacks the lifetime line" >&2
    exit 1
}
printf '%s\n' "$fleet_first" | awk '
    $1 ~ /s$/ && $NF ~ /%$/ {
        row = $0
        gsub(/%/, "")
        for (i = 2; i <= 7; i++) if ($i + 0 != $i) {
            print "fleet: non-finite statistic in: " row; exit 1
        }
        if ($4 > $5 || $5 > $6) {
            print "fleet: percentiles not monotone in: " row; exit 1
        }
        rows++
    }
    END { if (rows < 1) { print "fleet: no statistics rows"; exit 1 } }' || exit 1
fleet_second="$(target/release/relia fleet --samples 10000 --checkpoint "$fleet_ckpt" 2>/dev/null)"
if [ "$fleet_first" != "$fleet_second" ]; then
    echo "fleet: resumed run diverged from the first" >&2
    exit 1
fi
rm -f "$fleet_ckpt"

echo "==> relia surface (build, probe gate, surface-tier loadgen)"
# Build a small artifact through the release CLI (the builder refuses to
# write one whose measured sup-error exceeds the documented bound), gate
# an in-domain probe against exact evaluation, confirm the clamp report,
# then run the load generator against a self-hosted server with the
# surface mounted: interpolated bodies are checked within the bound and
# the hit/miss/fallback/clamp ledger must balance.
surface_rls="$(mktemp -u).rls"
target/release/relia surface build --out "$surface_rls" \
    --tstandby 320:400:9 --ras 0.1:0.9:9 --times 1e6:1e9:13
# (probe exits 1 itself if the interpolated answer misses the bound)
probe_in="$(target/release/relia surface probe "$surface_rls" --tstandby 335)"
printf '%s\n' "$probe_in" | grep -q "clamped: false" || {
    echo "surface: in-domain probe unexpectedly clamped" >&2
    exit 1
}
probe_out="$(target/release/relia surface probe "$surface_rls" --tstandby 310)"
printf '%s\n' "$probe_out" | grep -q "clamped: true" || {
    echo "surface: out-of-domain probe did not report the clamp" >&2
    exit 1
}
cargo run -q --offline --release -p relia-serve --example loadgen -- \
    --requests 1000 --threads 2 --surface "$surface_rls"
rm -f "$surface_rls"

echo "==> bench_fleet (hoisted-batch speedup gate vs BENCH_fleet.json)"
cargo run -q --offline --release -p relia-bench --bin bench_fleet -- --check

echo "==> bench_serve (breaker shed-cost gate vs BENCH_serve.json)"
cargo run -q --offline --release -p relia-bench --bin bench_serve -- --check

echo "==> bench_lint (per-line analysis-cost gate vs BENCH_lint.json)"
cargo run -q --offline --release -p relia-bench --bin bench_lint -- --check

echo "==> bench_obs (span/histogram record-cost gate vs BENCH_obs.json)"
cargo run -q --offline --release -p relia-bench --bin bench_obs -- --check

echo "==> bench_surface (lookup speedup gate vs BENCH_surface.json)"
cargo run -q --offline --release -p relia-bench --bin bench_surface -- --check

echo "==> all checks passed"

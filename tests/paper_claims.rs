//! Integration tests pinning the paper's quantitative claims (shape, not
//! absolute numbers — see EXPERIMENTS.md for the side-by-side).

#![allow(clippy::unwrap_used)]
use relia::core::{Kelvin, ModeSchedule, NbtiModel, PmosStress, Ras, Seconds};
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy, VariationConfig, VariationStudy};
use relia::netlist::iscas;
use relia::sleep::StSizing;

fn schedule(a: f64, s: f64, temp_s: f64) -> ModeSchedule {
    ModeSchedule::new(
        Ras::new(a, s).expect("ratio"),
        Seconds(1000.0),
        Kelvin(400.0),
        Kelvin(temp_s),
    )
    .expect("schedule")
}

/// Table 1's three regimes: growth at hot standby, shrinkage at cool
/// standby, near-neutrality at 370 K.
#[test]
fn table1_regimes() {
    let model = NbtiModel::ptm90().expect("built-in");
    let life = Seconds(1.0e8);
    let stress = PmosStress::worst_case();
    let dv = |a: f64, s: f64, t: f64| {
        model
            .delta_vth(life, &schedule(a, s, t), &stress)
            .expect("valid")
    };
    assert!(
        dv(1.0, 9.0, 400.0) > dv(1.0, 1.0, 400.0),
        "hot standby grows"
    );
    assert!(
        dv(1.0, 9.0, 330.0) < dv(1.0, 1.0, 330.0),
        "cool standby shrinks"
    );
    let neutral_spread = (dv(1.0, 9.0, 370.0) - dv(1.0, 1.0, 370.0)).abs() / dv(1.0, 1.0, 370.0);
    assert!(
        neutral_spread < 0.06,
        "370 K is RAS-neutral (got {neutral_spread})"
    );
    // The 1:9 gap between hot and cool standby is of order 10 mV.
    let gap_mv = (dv(1.0, 9.0, 400.0) - dv(1.0, 9.0, 330.0)) * 1e3;
    assert!((6.0..18.0).contains(&gap_mv), "gap {gap_mv} mV");
}

/// Table 4's shape: best case flat, worst case and potential grow with
/// the standby temperature, potential of order tens of percent.
#[test]
fn table4_shape_on_c432() {
    let circuit = iscas::circuit("c432").expect("benchmark");
    let mut worsts = Vec::new();
    let mut bests = Vec::new();
    for temp in [330.0, 400.0] {
        let config = FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("ratio"), Kelvin(temp))
            .expect("schedule");
        let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
        worsts.push(
            analysis
                .run(&StandbyPolicy::AllInternalZero)
                .expect("run")
                .degradation_fraction(),
        );
        bests.push(
            analysis
                .run(&StandbyPolicy::AllInternalOne)
                .expect("run")
                .degradation_fraction(),
        );
    }
    assert!(worsts[1] > worsts[0], "worst case grows with T_standby");
    assert!(
        (bests[1] - bests[0]).abs() / bests[0] < 1e-9,
        "best case flat"
    );
    let pot_cool = (worsts[0] - bests[0]) / worsts[0];
    let pot_hot = (worsts[1] - bests[1]) / worsts[1];
    assert!(pot_hot > pot_cool);
    assert!((0.1..0.8).contains(&pot_cool), "cool potential {pot_cool}");
    assert!((0.3..0.8).contains(&pot_hot), "hot potential {pot_hot}");
    // Magnitudes in the paper's few-percent band.
    assert!(
        (0.02..0.10).contains(&worsts[1]),
        "hot worst {:.4}",
        worsts[1]
    );
    assert!((0.01..0.06).contains(&bests[0]), "best {:.4}", bests[0]);
}

/// Figs. 8–9 corners: ST shift 7–36 mV, size margin 1–5%.
#[test]
fn st_corner_ranges() {
    let model = NbtiModel::ptm90().expect("built-in");
    let life = Seconds(1.0e8);
    let hi_sizing = StSizing::paper_defaults(0.05, 0.20).expect("sizing");
    let hi = hi_sizing
        .st_delta_vth(&model, &schedule(9.0, 1.0, 330.0), life)
        .expect("valid");
    let lo_sizing = StSizing::paper_defaults(0.05, 0.40).expect("sizing");
    let lo = lo_sizing
        .st_delta_vth(&model, &schedule(1.0, 9.0, 330.0), life)
        .expect("valid");
    assert!((0.004..0.012).contains(&lo), "low corner {lo}");
    assert!((0.024..0.042).contains(&hi), "high corner {hi}");
    let m_lo = lo_sizing.nbti_size_margin(lo).expect("margin");
    let m_hi = hi_sizing.nbti_size_margin(hi).expect("margin");
    assert!(m_lo < m_hi);
    assert!((0.008..0.06).contains(&m_lo), "margin {m_lo}");
    assert!((0.02..0.08).contains(&m_hi), "margin {m_hi}");
}

/// Fig. 12's marker: the aged −3σ exceeds the fresh +3σ, and sigma
/// compresses.
#[test]
fn fig12_crossover_on_c880() {
    let circuit = iscas::circuit("c880").expect("benchmark");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
    let var = VariationConfig {
        samples: 150,
        ..VariationConfig::paper_defaults().expect("built-in")
    };
    let times = [Seconds(0.0), Seconds::from_years(3.0)];
    let pts = VariationStudy::run(&analysis, &StandbyPolicy::AllInternalZero, &var, &times)
        .expect("study");
    assert!(
        pts[1].delay.lower(3.0) > pts[0].delay.upper(3.0),
        "aged lower bound {} must exceed fresh upper bound {}",
        pts[1].delay.lower(3.0),
        pts[0].delay.upper(3.0)
    );
    assert!(pts[1].delay.std_dev < pts[0].delay.std_dev);
}

/// The gate-family asymmetry driving the co-optimization (Table 2): the
/// NOR2 minimum-leakage vector removes all PMOS stress, while the NAND2 and
/// INV minimum-leakage vectors stress every PMOS.
#[test]
fn table2_family_asymmetry() {
    use relia::cells::{Library, Vector};
    use relia::leakage::{cell_leakage, DeviceModels};

    let lib = Library::ptm90();
    let models = DeviceModels::ptm90();
    let mlv_of = |name: &str| {
        let cell = lib.cell(lib.find(name).expect("catalog"));
        Vector::all(cell.num_pins())
            .min_by(|a, b| {
                cell_leakage(cell, &a.to_bools(), &models, Kelvin(400.0))
                    .total()
                    .partial_cmp(&cell_leakage(cell, &b.to_bools(), &models, Kelvin(400.0)).total())
                    .expect("finite")
            })
            .expect("nonempty")
    };
    let stressed = |name: &str, v: Vector| {
        let cell = lib.cell(lib.find(name).expect("catalog"));
        cell.stressed_pmos(&v.to_bools())
            .iter()
            .filter(|&&s| s)
            .count()
    };
    // NOR2: MLV = 11, no stress.
    let nor_mlv = mlv_of("NOR2");
    assert_eq!(nor_mlv.bits(), 0b11);
    assert_eq!(stressed("NOR2", nor_mlv), 0);
    // NAND2: MLV = 00, all stressed.
    let nand_mlv = mlv_of("NAND2");
    assert_eq!(nand_mlv.bits(), 0b00);
    assert_eq!(stressed("NAND2", nand_mlv), 2);
    // INV: MLV = 0, stressed.
    let inv_mlv = mlv_of("INV");
    assert_eq!(inv_mlv.bits(), 0b0);
    assert_eq!(stressed("INV", inv_mlv), 1);
}

/// Fig. 2's thermal behaviour: the 10–130 W range maps to roughly the
/// paper's 45–110 °C window with millisecond convergence.
#[test]
fn fig2_thermal_window() {
    use relia::thermal::{RcThermalModel, TaskSet};
    let model = RcThermalModel::air_cooled();
    let trace = model.simulate(TaskSet::random(20, 99).profile(), 1e-3);
    let min = trace
        .iter()
        .map(|p| p.temp.to_celsius())
        .fold(f64::MAX, f64::min);
    let max = trace
        .iter()
        .map(|p| p.temp.to_celsius())
        .fold(f64::MIN, f64::max);
    assert!(min > 40.0 && min < 70.0, "min {min}");
    assert!(max > 95.0 && max < 120.0, "max {max}");
    assert!(model.time_constant() < 0.05);
}

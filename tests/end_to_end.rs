//! End-to-end integration tests across the full crate stack: netlist →
//! simulation → NBTI model → STA → leakage → IVC/ST techniques.

#![allow(clippy::unwrap_used)]
use relia::core::{Kelvin, Ras, Seconds};
use relia::flow::{AgingAnalysis, FlowConfig, StandbyPolicy};
use relia::ivc::{
    co_optimize, exhaustive_mlv, internal_node_potential, search_mlv_set, MlvSearchConfig,
};
use relia::netlist::iscas;
use relia::sleep::{SleepTransistorKind, StInsertion, StSizing};

fn paper_analysis(circuit: &relia::netlist::Circuit) -> (FlowConfig, ()) {
    let config = FlowConfig::paper_defaults().expect("built-in");
    let _ = circuit;
    (config, ())
}

#[test]
fn full_flow_on_c17_reproduces_ordering() {
    let circuit = iscas::c17();
    let (config, ()) = paper_analysis(&circuit);
    let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");

    let worst = analysis.run(&StandbyPolicy::AllInternalZero).expect("run");
    let best = analysis.run(&StandbyPolicy::AllInternalOne).expect("run");
    let footer = analysis.run(&StandbyPolicy::PowerGatedFooter).expect("run");

    // Ordering: worst >= any vector >= best == footer.
    assert!(worst.degradation_fraction() > best.degradation_fraction());
    assert!(
        (footer.degradation_fraction() - best.degradation_fraction()).abs() < 1e-12,
        "footer gating equals the all-'1' bound"
    );
    for bits in 0..32u32 {
        let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        let r = analysis
            .run(&StandbyPolicy::InputVector(v))
            .expect("vector run");
        assert!(r.degradation_fraction() <= worst.degradation_fraction() + 1e-12);
        assert!(r.degradation_fraction() >= best.degradation_fraction() - 1e-12);
    }
}

#[test]
fn heuristic_mlv_matches_exhaustive_on_c17() {
    let circuit = iscas::c17();
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
    let (_, exact_leak) = exhaustive_mlv(&analysis).expect("exhaustive");
    let set = search_mlv_set(&analysis, &MlvSearchConfig::default()).expect("search");
    assert!(
        (set.min_leakage() - exact_leak).abs() / exact_leak < 1e-9,
        "heuristic {} vs exhaustive {}",
        set.min_leakage(),
        exact_leak
    );
}

#[test]
fn mlv_cooptimization_stays_within_leakage_band() {
    let circuit = iscas::circuit("c432").expect("benchmark");
    let config = FlowConfig::with_schedule(Ras::new(1.0, 5.0).expect("ratio"), Kelvin(330.0))
        .expect("schedule");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
    let set = search_mlv_set(
        &analysis,
        &MlvSearchConfig {
            vectors_per_round: 48,
            max_rounds: 6,
            ..MlvSearchConfig::default()
        },
    )
    .expect("search");
    let co = co_optimize(&analysis, &set).expect("co-optimize");
    let min_leak = set.min_leakage();
    for e in &co.evaluations {
        assert!(e.leakage <= min_leak * 1.04 + 1e-18, "outside the 4% band");
    }
    // The selected vector's degradation is minimal within the set.
    for e in &co.evaluations {
        assert!(e.degradation + 1e-15 >= co.best().degradation);
    }
}

#[test]
fn inc_potential_grows_with_standby_temperature_across_suite() {
    for name in ["c17", "c432", "c499"] {
        let circuit = iscas::circuit(name).expect("benchmark");
        let mut previous = -1.0;
        for temp in [330.0, 370.0, 400.0] {
            let config =
                FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("ratio"), Kelvin(temp))
                    .expect("schedule");
            let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
            let p = internal_node_potential(&analysis).expect("potential");
            assert!(
                p.potential() > previous,
                "{name}: potential not monotone at {temp} K"
            );
            previous = p.potential();
        }
    }
}

#[test]
fn sleep_transistor_beats_hot_ungated_circuit_at_end_of_life() {
    let circuit = iscas::circuit("c432").expect("benchmark");
    let hot = FlowConfig::with_schedule(Ras::new(1.0, 9.0).expect("ratio"), Kelvin(400.0))
        .expect("schedule");
    let analysis = AgingAnalysis::new(&hot, &circuit).expect("analysis");
    let ungated = analysis
        .run(&StandbyPolicy::AllInternalZero)
        .expect("ungated");
    let gated = StInsertion {
        kind: SleepTransistorKind::Footer,
        sizing: StSizing::paper_defaults(0.01, 0.30).expect("sizing"),
    };
    let pts = gated
        .delay_over_time(&analysis, &[Seconds(1.0e8)])
        .expect("trajectory");
    assert!(
        pts[0].increase_vs_nominal < ungated.degradation_fraction(),
        "Fig. 11's crossover: gated {} vs ungated {}",
        pts[0].increase_vs_nominal,
        ungated.degradation_fraction()
    );
}

#[test]
fn bench_format_circuits_run_through_the_full_flow() {
    let text = "
INPUT(x)
INPUT(y)
INPUT(z)
OUTPUT(q)
n1 = NAND(x, y)
n2 = NOR(y, z)
q  = XOR(n1, n2)
";
    let circuit = relia::netlist::bench::parse(text, relia::cells::Library::ptm90())
        .expect("valid bench text");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let analysis = AgingAnalysis::new(&config, &circuit).expect("analysis");
    let report = analysis
        .run(&StandbyPolicy::InputVector(vec![true, false, true]))
        .expect("run");
    assert!(report.degradation_fraction() > 0.0);
    assert!(report.standby_leakage.expect("vector policy") > 0.0);
}

#[test]
fn degradation_is_deterministic_across_runs() {
    let circuit = iscas::circuit("c880").expect("benchmark");
    let config = FlowConfig::paper_defaults().expect("built-in");
    let a = AgingAnalysis::new(&config, &circuit)
        .expect("analysis")
        .run(&StandbyPolicy::AllInternalZero)
        .expect("run");
    let b = AgingAnalysis::new(&config, &circuit)
        .expect("analysis")
        .run(&StandbyPolicy::AllInternalZero)
        .expect("run");
    assert_eq!(a.degraded.max_delay_ps(), b.degraded.max_delay_ps());
    assert_eq!(a.gate_delta_vth, b.gate_delta_vth);
}

//! Integration tests for the `relia` command-line front end.

use std::process::Command;

fn relia(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_relia"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_shows_the_suite() {
    let (ok, stdout, _) = relia(&["list"]);
    assert!(ok);
    for name in ["c17", "c432", "c7552"] {
        assert!(stdout.contains(name), "{name} missing from:\n{stdout}");
    }
}

#[test]
fn info_on_builtin() {
    let (ok, stdout, _) = relia(&["info", "builtin:c17"]);
    assert!(ok);
    assert!(stdout.contains("gates   : 6"));
    assert!(stdout.contains("NAND2 x 6"));
}

#[test]
fn timing_reports_critical_path() {
    let (ok, stdout, _) = relia(&["timing", "builtin:c432"]);
    assert!(ok);
    assert!(stdout.contains("max delay"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn aging_with_flags() {
    let (ok, stdout, _) = relia(&[
        "aging",
        "builtin:c17",
        "--ras",
        "1:5",
        "--tstandby",
        "370",
        "--standby",
        "footer",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("degradation"));
    assert!(stdout.contains("370 K"));
}

#[test]
fn aging_with_explicit_vector() {
    let (ok, stdout, _) = relia(&["aging", "builtin:c17", "--standby", "00110"]);
    assert!(ok);
    assert!(stdout.contains("standby leak"));
}

#[test]
fn dot_emits_graphviz() {
    let (ok, stdout, _) = relia(&["dot", "builtin:c17"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
}

#[test]
fn parses_bench_file_from_disk() {
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tiny.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n").expect("write");
    let (ok, stdout, _) = relia(&["info", path.to_str().expect("utf-8 path")]);
    assert!(ok);
    assert!(stdout.contains("gates   : 1"));
}

#[test]
fn bad_command_fails_with_usage() {
    let (ok, _, stderr) = relia(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_vector_width_is_reported() {
    let (ok, _, stderr) = relia(&["aging", "builtin:c17", "--standby", "111"]);
    assert!(!ok);
    assert!(stderr.contains("5 inputs"), "{stderr}");
}

#[test]
fn lib_report_covers_catalog() {
    let (ok, stdout, _) = relia(&["lib"]);
    assert!(ok);
    for cell in ["INV", "NAND2", "NOR3", "AOI21", "NAND2_X2"] {
        assert!(stdout.contains(cell), "{cell} missing");
    }
    // The co-optimization conflict is visible in the report: NOR2's MLV
    // stresses nothing, NAND2's stresses everything.
    assert!(stdout.lines().any(|l| l.contains("NOR2 ") && l.contains("0/2")));
    assert!(stdout.lines().any(|l| l.contains("NAND2 ") && l.contains("2/2")));
}

#[test]
fn paths_subcommand_enumerates() {
    let (ok, stdout, _) = relia(&["paths", "builtin:c17", "3"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 3);
    assert!(stdout.contains("ps"));
}

#[test]
fn csv_export_has_per_gate_rows() {
    let (ok, stdout, _) = relia(&["csv", "builtin:c17"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 7); // header + 6 gates
    assert!(stdout.starts_with("gate,cell,level,"));
}

#[test]
fn liberty_export_is_emitted() {
    let (ok, stdout, _) = relia(&["liberty"]);
    assert!(ok);
    assert!(stdout.contains("library (relia_ptm90)"));
    assert!(stdout.contains("leakage_power"));
}

#[test]
fn verilog_round_trip_through_cli() {
    let (ok, verilog, _) = relia(&["verilog", "builtin:c17"]);
    assert!(ok);
    assert!(verilog.starts_with("module c17"));
    // Feed it back through a .v file.
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("c17.v");
    std::fs::write(&path, &verilog).expect("write");
    let (ok, stdout, _) = relia(&["info", path.to_str().expect("utf-8 path")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("gates   : 6"));
}

//! Integration tests for the `relia` command-line front end.

#![allow(clippy::unwrap_used)]
use std::process::Command;

fn relia(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = relia_coded(args);
    (code == Some(0), stdout, stderr)
}

fn relia_coded(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_relia"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_shows_the_suite() {
    let (ok, stdout, _) = relia(&["list"]);
    assert!(ok);
    for name in ["c17", "c432", "c7552"] {
        assert!(stdout.contains(name), "{name} missing from:\n{stdout}");
    }
}

#[test]
fn info_on_builtin() {
    let (ok, stdout, _) = relia(&["info", "builtin:c17"]);
    assert!(ok);
    assert!(stdout.contains("gates   : 6"));
    assert!(stdout.contains("NAND2 x 6"));
}

#[test]
fn timing_reports_critical_path() {
    let (ok, stdout, _) = relia(&["timing", "builtin:c432"]);
    assert!(ok);
    assert!(stdout.contains("max delay"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn aging_with_flags() {
    let (ok, stdout, _) = relia(&[
        "aging",
        "builtin:c17",
        "--ras",
        "1:5",
        "--tstandby",
        "370",
        "--standby",
        "footer",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("degradation"));
    assert!(stdout.contains("370 K"));
}

#[test]
fn aging_with_explicit_vector() {
    let (ok, stdout, _) = relia(&["aging", "builtin:c17", "--standby", "00110"]);
    assert!(ok);
    assert!(stdout.contains("standby leak"));
}

#[test]
fn dot_emits_graphviz() {
    let (ok, stdout, _) = relia(&["dot", "builtin:c17"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
}

#[test]
fn parses_bench_file_from_disk() {
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tiny.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n").expect("write");
    let (ok, stdout, _) = relia(&["info", path.to_str().expect("utf-8 path")]);
    assert!(ok);
    assert!(stdout.contains("gates   : 1"));
}

#[test]
fn bad_command_fails_with_usage() {
    let (ok, _, stderr) = relia(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_vector_width_is_reported() {
    let (ok, _, stderr) = relia(&["aging", "builtin:c17", "--standby", "111"]);
    assert!(!ok);
    assert!(stderr.contains("5 inputs"), "{stderr}");
}

#[test]
fn lib_report_covers_catalog() {
    let (ok, stdout, _) = relia(&["lib"]);
    assert!(ok);
    for cell in ["INV", "NAND2", "NOR3", "AOI21", "NAND2_X2"] {
        assert!(stdout.contains(cell), "{cell} missing");
    }
    // The co-optimization conflict is visible in the report: NOR2's MLV
    // stresses nothing, NAND2's stresses everything.
    assert!(stdout
        .lines()
        .any(|l| l.contains("NOR2 ") && l.contains("0/2")));
    assert!(stdout
        .lines()
        .any(|l| l.contains("NAND2 ") && l.contains("2/2")));
}

#[test]
fn paths_subcommand_enumerates() {
    let (ok, stdout, _) = relia(&["paths", "builtin:c17", "3"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 3);
    assert!(stdout.contains("ps"));
}

#[test]
fn csv_export_has_per_gate_rows() {
    let (ok, stdout, _) = relia(&["csv", "builtin:c17"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 7); // header + 6 gates
    assert!(stdout.starts_with("gate,cell,level,"));
}

#[test]
fn liberty_export_is_emitted() {
    let (ok, stdout, _) = relia(&["liberty"]);
    assert!(ok);
    assert!(stdout.contains("library (relia_ptm90)"));
    assert!(stdout.contains("leakage_power"));
}

#[test]
fn help_prints_usage_to_stdout_and_succeeds() {
    let (code, stdout, stderr) = relia_coded(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage"));
    assert!(stdout.contains("sweep"));
    assert!(stdout.contains("fleet"));
    assert!(stdout.contains("relia surface build"));
    assert!(stdout.contains("relia surface probe"));
    assert!(stderr.is_empty(), "{stderr}");
}

#[test]
fn usage_errors_exit_2_and_analysis_errors_exit_1() {
    let (code, _, stderr) = relia_coded(&["frobnicate"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&[]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["aging", "builtin:c17", "--ras", "oops"]);
    assert_eq!(code, Some(2), "{stderr}");
    // A readable invocation pointing at a missing file is an analysis error.
    let (code, _, stderr) = relia_coded(&["info", "/no/such/file.bench"]);
    assert_eq!(code, Some(1), "{stderr}");
    // ... as is a well-formed standby vector of the wrong width.
    let (code, _, _) = relia_coded(&["aging", "builtin:c17", "--standby", "111"]);
    assert_eq!(code, Some(1));
}

#[test]
fn sweep_exit_codes_are_pinned() {
    // Success → 0 (with the resilience flags accepted).
    let (code, _, stderr) = relia_coded(&[
        "sweep",
        "builtin:c17",
        "--ras",
        "1:1",
        "--tstandby",
        "330",
        "--standby",
        "worst",
        "--retries",
        "1",
        "--job-timeout",
        "30",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    // Usage → 2: an explicit zero worker count...
    let (code, _, stderr) = relia_coded(&["sweep", "--jobs", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--jobs must be at least 1"), "{stderr}");
    // ... and a grid axis that parses to nothing.
    let (code, _, stderr) = relia_coded(&["sweep", "--tstandby", ""]);
    assert_eq!(code, Some(2), "{stderr}");
    // Analysis failure → 1: resuming from a file that is not a checkpoint
    // (its header cannot be authenticated, so it is not safe to salvage).
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bogus = dir.join(format!("bogus-{}.jsonl", std::process::id()));
    std::fs::write(&bogus, "this is not a checkpoint\n").expect("write");
    let (code, _, stderr) = relia_coded(&[
        "sweep",
        "builtin:c17",
        "--checkpoint",
        bogus.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("checkpoint"), "{stderr}");
    std::fs::remove_file(&bogus).ok();
}

#[test]
fn sweep_runs_a_small_grid() {
    let (ok, stdout, stderr) = relia(&[
        "sweep",
        "builtin:c17",
        "--ras",
        "1:1,1:9",
        "--tstandby",
        "330,400",
        "--standby",
        "worst,best",
        "--jobs",
        "2",
    ]);
    assert!(ok, "{stderr}");
    // Header + 2 ras x 2 temps x 2 policies = 9 lines.
    assert_eq!(stdout.lines().count(), 9, "{stdout}");
    assert!(stdout.contains("c17"));
    assert!(stdout.contains("mV"));
    assert!(!stdout.contains("FAILED"), "{stdout}");
    assert!(stderr.contains("sweep: 8 jobs"), "{stderr}");
    assert!(stderr.contains("cache:"), "{stderr}");
}

#[test]
fn sweep_resumes_from_checkpoint() {
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join(format!("sweep-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let args = [
        "sweep",
        "builtin:c17",
        "--ras",
        "1:1,1:5",
        "--tstandby",
        "330,400",
        "--standby",
        "worst",
        "--checkpoint",
        ckpt.to_str().expect("utf-8 path"),
    ];
    let (ok, first, stderr) = relia(&args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("0 resumed"), "{stderr}");
    // Second run finds every job in the checkpoint and recomputes nothing,
    // yet prints the identical table.
    let (ok, second, stderr) = relia(&args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("(0 executed, 4 resumed"), "{stderr}");
    assert_eq!(first, second);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn fleet_help_and_exit_codes_are_pinned() {
    // `relia fleet --help` → 0 with the flag table on stdout.
    let (code, stdout, stderr) = relia_coded(&["fleet", "--help"]);
    assert_eq!(code, Some(0), "{stderr}");
    for needle in [
        "usage: relia fleet",
        "--samples",
        "--seed",
        "--guardband",
        "--checkpoint",
        "--trace",
        "bit-identical",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in {stdout}");
    }
    // Flag mistakes → 2.
    let (code, _, stderr) = relia_coded(&["fleet", "--bogus", "1"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--trace", "lots"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("bad trace capacity"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--samples", "many"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--workers", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--workers must be at least 1"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--chunk", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--seed"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("needs a value"), "{stderr}");
    // Well-formed numbers the engine rejects → 1.
    let (code, _, stderr) = relia_coded(&["fleet", "--samples", "64", "--guardband", "1.5"]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("guardband"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["fleet", "--samples", "64", "--correlation", "2"]);
    assert_eq!(code, Some(1), "{stderr}");
}

#[test]
fn fleet_runs_and_resumes_deterministically() {
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join(format!("fleet-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let args = [
        "fleet",
        "--samples",
        "10000",
        "--seed",
        "0x2a",
        "--chunk",
        "1024",
        "--checkpoint",
        ckpt.to_str().expect("utf-8 path"),
    ];
    let (ok, first, stderr) = relia(&args);
    assert!(ok, "{stderr}");
    assert!(first.contains("fleet: 10000 devices, seed 0x2a"), "{first}");
    assert!(first.contains("yield"), "{first}");
    assert!(first.contains("lifetime: p01"), "{first}");
    assert!(stderr.contains("(10 executed, 0 resumed)"), "{stderr}");
    // Second run restores every chunk from the checkpoint and prints the
    // byte-identical table.
    let (ok, second, stderr) = relia(&args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("(0 executed, 10 resumed)"), "{stderr}");
    assert_eq!(first, second);
    // A different worker count changes nothing either.
    let mut more = args.to_vec();
    more.extend(["--workers", "3"]);
    let (ok, third, stderr) = relia(&more);
    assert!(ok, "{stderr}");
    assert_eq!(first, third);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn fleet_trace_prints_phase_attribution_to_stderr() {
    let (ok, stdout, stderr) = relia(&[
        "fleet",
        "--samples",
        "2000",
        "--chunk",
        "512",
        "--trace",
        "64",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("lifetime: p01"), "{stdout}");
    assert!(stderr.contains("trace: fleet_hoist"), "{stderr}");
    assert!(stderr.contains("trace: fleet_chunk"), "{stderr}");
    assert!(stderr.contains("trace: fleet_merge"), "{stderr}");
    assert!(stderr.contains("4 span(s)"), "4 chunks of 512: {stderr}");
    // The attribution is stderr-only garnish: stdout stays identical to
    // an untraced run.
    let (ok, untraced, stderr) = relia(&["fleet", "--samples", "2000", "--chunk", "512"]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout, untraced);
    assert!(!stderr.contains("trace:"), "{stderr}");
}

#[test]
fn version_prints_and_exits_0() {
    for flag in ["--version", "-V", "version"] {
        let (code, stdout, stderr) = relia_coded(&[flag]);
        assert_eq!(code, Some(0), "{flag}: {stderr}");
        assert!(
            stdout.starts_with("relia ") && stdout.trim().len() > "relia ".len(),
            "{flag}: {stdout:?}"
        );
        assert!(stderr.is_empty(), "{flag}: {stderr}");
    }
}

#[test]
fn serve_help_and_usage_exit_codes_are_pinned() {
    // `relia serve --help` → 0 with the endpoint table on stdout.
    let (code, stdout, stderr) = relia_coded(&["serve", "--help"]);
    assert_eq!(code, Some(0), "{stderr}");
    for needle in [
        "usage: relia serve",
        "/v1/degrade",
        "/v1/sweep",
        "/healthz",
        "/metrics",
        "--queue-depth",
        "--request-timeout",
        "--breaker-threshold",
        "--breaker-cooldown",
        "--brownout-high-water",
        "--trace",
        "--slow-ms",
        "/debug/trace",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in {stdout}");
    }
    // Flag mistakes → 2.
    let (code, _, stderr) = relia_coded(&["serve", "--bogus", "1"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--queue-depth", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--queue-depth"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--threads", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--request-timeout", "-1"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--breaker-threshold", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--breaker-threshold"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--breaker-threshold", "many"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--breaker-cooldown", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--brownout-high-water", "-3"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--trace", "lots"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("bad trace capacity"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--slow-ms", "-5"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("bad slow threshold"), "{stderr}");
    // An unbindable address is an analysis failure → 1.
    let (code, _, stderr) = relia_coded(&["serve", "--addr", "256.0.0.1:99999"]);
    assert_eq!(code, Some(1), "{stderr}");
}

#[test]
fn serve_boots_answers_and_drains_to_exit_0() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_relia"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("relia-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let request = |verb: &str, path: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        write!(s, "{verb} {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        response
    };
    let health = request("GET", "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("{\"status\":\"ok\"}"), "{health}");
    let metrics = request("GET", "/metrics");
    assert!(metrics.contains("relia_serve_requests"), "{metrics}");
    let shutdown = request("POST", "/admin/shutdown");
    assert!(shutdown.starts_with("HTTP/1.1 200"), "{shutdown}");

    let status = child.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
}

#[test]
fn surface_help_and_exit_codes_are_pinned() {
    // `relia surface --help` (and the bare subcommand) → 0 with the
    // build/probe tables on stdout.
    for args in [&["surface", "--help"][..], &["surface", "help"]] {
        let (code, stdout, stderr) = relia_coded(args);
        assert_eq!(code, Some(0), "{args:?}: {stderr}");
        for needle in [
            "usage: relia surface",
            "build",
            "probe",
            "--tstandby",
            "--pairs",
            "sup-error",
        ] {
            assert!(stdout.contains(needle), "missing {needle:?} in {stdout}");
        }
    }
    // Invocation mistakes → 2.
    let (code, _, stderr) = relia_coded(&["surface", "frobnicate"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown surface subcommand"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "build", "--tstandby", "nope"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("LO:HI:N"), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "build", "--ras", "0.1:0.9"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "build", "--workers", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "build", "--pairs", "0.5"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "probe"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = relia_coded(&["surface", "probe", "x.rls", "--ras", "oops"]);
    assert_eq!(code, Some(2), "{stderr}");
    // A missing or unreadable artifact is an analysis failure → 1, for
    // probe and for mounting at serve startup alike.
    let (code, _, stderr) = relia_coded(&["surface", "probe", "/no/such/artifact.rls"]);
    assert_eq!(code, Some(1), "{stderr}");
    let (code, _, stderr) = relia_coded(&["serve", "--surface", "/no/such/artifact.rls"]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("cannot mount surface"), "{stderr}");
}

#[test]
fn surface_build_probe_and_serve_round_trip() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join(format!("surface-{}.rls", std::process::id()));
    let path = artifact.to_str().expect("utf-8 path");

    // Build a small but bound-holding grid.
    let (code, stdout, stderr) = relia_coded(&[
        "surface",
        "build",
        "--out",
        path,
        "--tstandby",
        "320:400:9",
        "--ras",
        "0.1:0.9:9",
        "--times",
        "1e6:1e9:13",
        "--workers",
        "2",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("surface: wrote"), "{stdout}");
    assert!(stdout.contains("grid: 1 x 9 x 9 x 13"), "{stdout}");
    assert!(stdout.contains("sup-error:"), "{stdout}");

    // In-domain probe: interpolated answer, unclamped, error gated.
    let (code, stdout, stderr) = relia_coded(&["surface", "probe", path, "--tstandby", "335"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("delta_vth_v:"), "{stdout}");
    assert!(stdout.contains("clamped: false"), "{stdout}");
    assert!(stdout.contains("rel-error:"), "{stdout}");

    // Out-of-domain probe: clamped, reported, no error gate.
    let (code, stdout, stderr) = relia_coded(&["surface", "probe", path, "--tstandby", "310"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("clamped: true"), "{stdout}");
    assert!(!stdout.contains("rel-error:"), "{stdout}");

    // A stress pair the artifact does not carry → 1.
    let (code, _, stderr) = relia_coded(&["surface", "probe", path, "--pactive", "0.7"]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("not in the artifact"), "{stderr}");

    // Mount the artifact and serve: surface answers count as hits, the
    // gauge reports the tier as active, and drain still exits 0.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_relia"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--surface",
            path,
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut stdout_pipe = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    stdout_pipe.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("relia-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();
    let request = |verb: &str, path: &str, body: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        write!(
            s,
            "{verb} {path} HTTP/1.1\r\nConnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        response
    };
    let body = "{\"ras\":[1,9],\"t_standby_k\":330,\"lifetime_s\":1e8,\
                \"p_active\":0.5,\"p_standby\":1}";
    let degrade = request("POST", "/v1/degrade", body);
    assert!(degrade.starts_with("HTTP/1.1 200"), "{degrade}");
    assert!(degrade.contains("delta_vth_v"), "{degrade}");
    let metrics = request("GET", "/metrics", "");
    assert!(metrics.contains("relia_surface_active 1"), "{metrics}");
    assert!(metrics.contains("relia_surface_hits 1"), "{metrics}");
    let shutdown = request("POST", "/admin/shutdown", "");
    assert!(shutdown.starts_with("HTTP/1.1 200"), "{shutdown}");
    assert_eq!(child.wait().expect("server exits").code(), Some(0));

    // A truncated artifact is refused (torn-file rejection) → 1.
    let bytes = std::fs::read(&artifact).expect("read artifact");
    std::fs::write(&artifact, &bytes[..bytes.len() - 7]).expect("truncate");
    let (code, _, stderr) = relia_coded(&["surface", "probe", path]);
    assert_eq!(code, Some(1), "{stderr}");
    std::fs::remove_file(&artifact).ok();
}

/// The committed workspace root, which the burn-down guarantees lints
/// clean — `check.sh` relies on that exit 0.
fn workspace_root() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

#[test]
fn lint_workspace_is_clean_in_every_format() {
    for format in ["text", "json", "sarif"] {
        let (code, _, stderr) =
            relia_coded(&["lint", "--root", workspace_root(), "--format", format]);
        assert_eq!(code, Some(0), "--format {format}: {stderr}");
    }
}

#[test]
fn lint_parallel_output_is_byte_identical_to_serial() {
    let run = |jobs: &str| {
        relia_coded(&[
            "lint",
            "--root",
            workspace_root(),
            "--format",
            "json",
            "--jobs",
            jobs,
        ])
    };
    let (code, serial, stderr) = run("1");
    assert_eq!(code, Some(0), "{stderr}");
    let (code, parallel, stderr) = run("8");
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(serial, parallel, "worker count must not reorder output");
}

#[test]
fn lint_incremental_run_uses_the_committed_cache() {
    let (code, stdout, stderr) = relia_coded(&[
        "lint",
        "--root",
        workspace_root(),
        "--incremental",
        "--format",
        "json",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.is_empty(), "cache-hit run still found: {stdout}");
}

#[test]
fn lint_sarif_output_validates_against_the_minimal_schema() {
    use relia::serve::json::{parse, Json};

    let (code, stdout, stderr) =
        relia_coded(&["lint", "--root", workspace_root(), "--format", "sarif"]);
    assert_eq!(code, Some(0), "{stderr}");
    let doc = parse(stdout.as_bytes()).expect("SARIF output is valid JSON");

    // Minimal SARIF 2.1.0 shape: version + $schema at top level, exactly
    // one run whose driver names the tool and declares every rule id.
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some("2.1.0"),
        "{stdout}"
    );
    let schema = doc.get("$schema").and_then(Json::as_str).expect("$schema");
    assert!(schema.contains("sarif-2.1.0"), "{schema}");
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("relia-lint")
    );
    let rules = driver.get("rules").and_then(Json::as_arr).expect("rules");
    let ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    for id in relia::lint::RULE_IDS {
        assert!(ids.contains(&id), "driver.rules missing {id}");
    }
    // The burned-down workspace reports zero results.
    let results = runs[0].get("results").and_then(Json::as_arr);
    assert_eq!(results.map(<[Json]>::len), Some(0), "{stdout}");
}

#[test]
fn lint_flag_mistakes_exit_2() {
    for args in [
        &["lint", "--jobs", "0"][..],
        &["lint", "--jobs", "many"],
        &["lint", "--jobs"],
        &["lint", "--format", "xml"],
        &["lint", "--format"],
        &["lint", "--root"],
        &["lint", "--bogus"],
    ] {
        let (code, _, stderr) = relia_coded(args);
        assert_eq!(code, Some(2), "{args:?}: {stderr}");
    }
}

#[test]
fn lint_seeded_violation_exits_1_and_lands_in_sarif_results() {
    use relia::serve::json::{parse, Json};

    let dir = std::env::temp_dir().join(format!("relia_lint_cli_{}", std::process::id()));
    std::fs::create_dir_all(dir.join("src")).expect("temp workspace");
    std::fs::write(
        dir.join("src/util.rs"),
        "pub fn pick(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("seed violation");
    let root = dir.to_str().expect("utf-8 path");

    let (code, stdout, stderr) = relia_coded(&["lint", "--root", root]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stdout.contains("unwrap-in-lib"), "{stdout}");
    assert!(stderr.contains("lint violation"), "{stderr}");

    let (code, sarif, _) = relia_coded(&["lint", "--root", root, "--format", "sarif"]);
    assert_eq!(code, Some(1));
    let doc = parse(sarif.as_bytes()).expect("SARIF output is valid JSON");
    let results = doc.get("runs").and_then(Json::as_arr).expect("runs")[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    assert_eq!(results.len(), 1, "{sarif}");
    assert_eq!(
        results[0].get("ruleId").and_then(Json::as_str),
        Some("unwrap-in-lib")
    );
    let region = results[0]
        .get("locations")
        .and_then(Json::as_arr)
        .and_then(|l| l.first())
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        region
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str),
        Some("src/util.rs")
    );
    assert_eq!(
        region
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Json::as_f64),
        Some(2.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verilog_round_trip_through_cli() {
    let (ok, verilog, _) = relia(&["verilog", "builtin:c17"]);
    assert!(ok);
    assert!(verilog.starts_with("module c17"));
    // Feed it back through a .v file.
    let dir = std::env::temp_dir().join("relia_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("c17.v");
    std::fs::write(&path, &verilog).expect("write");
    let (ok, stdout, _) = relia(&["info", path.to_str().expect("utf-8 path")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("gates   : 6"));
}
